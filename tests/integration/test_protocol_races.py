"""Targeted races and corner cases in the comparator protocols."""

from __future__ import annotations

import pytest

from repro.consistency.base import make_system
from repro.core.machine import DSMMachine
from repro.errors import ReproError
from repro.workloads.lock_bench import LockBenchConfig, run_lock_bench


def build(system, n=6, topology="ring"):
    machine = DSMMachine(n_nodes=n, topology=topology)
    machine.create_group("g", root=0)
    machine.declare_variable("g", "m", 0, mutex_lock="L")
    machine.declare_lock("g", "L", protects=("m",))
    return machine, make_system(system, machine)


class TestReleaseLockForwardBounce:
    def test_forward_racing_release_is_re_dispatched(self):
        """A request forwarded to a holder that has already released
        must bounce back through the manager and still be granted."""
        machine, system = build("release")
        order = []

        def holder(node):
            yield from system.acquire(node, "L")
            order.append(("acq", node.id))
            yield 2e-6
            # Release while the forward for the late requester is still
            # in flight toward us (ring: the forward takes ~0.7 us).
            yield from system.release(node, "L")

        def late(node):
            # Timed so the request reaches the manager while node 3
            # holds, but the forward reaches node 3 after its release.
            yield 2.0e-6
            yield from system.acquire(node, "L")
            order.append(("acq", node.id))
            yield from system.release(node, "L")

        machine.spawn(holder(machine.nodes[3]), name="h")
        machine.spawn(late(machine.nodes[5]), name="l")
        machine.run()
        assert order == [("acq", 3), ("acq", 5)]

    def test_many_rapid_cycles_never_wedge(self):
        machine, system = build("release")
        done = []

        def churner(node):
            for _ in range(10):
                yield from system.acquire(node, "L")
                yield from system.release(node, "L")
            done.append(node.id)

        for node in machine.nodes:
            machine.spawn(churner(node), name=f"c{node.id}")
        machine.run()  # quiescence check catches wedges
        assert sorted(done) == list(range(6))


class TestMcsRaces:
    def test_release_concurrent_with_enqueue(self):
        """The CAS-fails-then-wait-for-link path of MCS release: the
        releasing node sees next == NIL, its CAS loses to a concurrent
        fetch-and-store, and it must wait for the link write."""
        # Heavy churn with zero think time maximizes the race window.
        result = run_lock_bench(
            LockBenchConfig(
                protocol="mcs",
                n_nodes=8,
                increments_per_node=10,
                think_time=0.1e-6,
                update_time=0.2e-6,
            )
        )
        assert result.extra["correct"]
        assert result.extra["converged"]

    @pytest.mark.parametrize("seed", range(3))
    def test_mcs_fairness_is_fifo_by_enqueue(self, seed):
        result = run_lock_bench(
            LockBenchConfig(
                protocol="mcs", n_nodes=5, increments_per_node=6, seed=seed
            )
        )
        assert result.extra["correct"]


class TestEntryForwarding:
    def test_request_racing_ownership_transfer_is_forwarded(self):
        """A request sent to the old owner mid-transfer must chase the
        lock to its new owner (counted as ec.forwards)."""
        machine, system = build("entry", n=8)
        order = []

        def worker(node, delay):
            yield delay
            yield from system.acquire(node, "L")
            order.append(node.id)
            yield 0.5e-6
            yield from system.release(node, "L")

        # 1 takes from initial owner 0; while the grant is in flight to
        # 1, node 7 requests from whomever it believes owns the lock.
        machine.spawn(worker(machine.nodes[1], 0.0), name="w1")
        machine.spawn(worker(machine.nodes[7], 0.3e-6), name="w7")
        machine.run()
        assert sorted(order) == [1, 7]
        assert len(order) == 2


class TestGwcFreeGrantSequencing:
    def test_free_propagation_then_new_request(self):
        """Release with empty queue propagates FREE; a later request is
        granted from the free state, and every member's copy converges
        through the exact value sequence."""
        machine, system = build("gwc", n=4, topology="mesh_torus")
        lock_values_seen = []
        node3 = machine.nodes[3]
        original = node3.store.write

        def spy(name, value, original=original):
            if name == "L":
                lock_values_seen.append(value)
            original(name, value)

        node3.store.write = spy  # type: ignore[method-assign]

        def first(node):
            yield from system.acquire(node, "L")
            yield 1e-6
            yield from system.release(node, "L")

        def second(node):
            yield 10e-6  # clearly after the FREE propagated
            yield from system.acquire(node, "L")
            yield from system.release(node, "L")

        machine.spawn(first(machine.nodes[1]), name="f")
        machine.spawn(second(machine.nodes[2]), name="s")
        machine.run()
        from repro.memory.varspace import FREE_VALUE, grant_value

        assert lock_values_seen == [
            grant_value(1),
            FREE_VALUE,
            grant_value(2),
            FREE_VALUE,
        ]


class TestErrorHierarchy:
    def test_every_library_error_is_a_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not ReproError:
                    assert issubclass(obj, ReproError), name

    def test_catching_base_class_works(self):
        from repro.errors import LockNestingError

        with pytest.raises(ReproError):
            raise LockNestingError("nested")
