"""Entry consistency owner guessing (§1.3) vs. the oracle fast version.

"Other schemes use a distributed algorithm to guess the current lock
owner, p.  If the guess is wrong ... the request is forwarded to a new
guess supplied by p", and §3: "Under light contention, entry consistency
may not perform as well, since a new requestor may often guess the wrong
lock owner and have to wait for its request to be forwarded."
"""

from __future__ import annotations

import pytest

from repro.consistency.base import make_system
from repro.core.machine import DSMMachine


def build(owner_oracle: bool, n=8):
    machine = DSMMachine(n_nodes=n, topology="ring")
    machine.create_group("g", root=0)
    machine.declare_variable("g", "d", 0, mutex_lock="L")
    machine.declare_lock("g", "L", protects=("d",))
    system = make_system("entry", machine, owner_oracle=owner_oracle)
    return machine, system


def round_robin_light_contention(machine, system, per_node=2, gap=20e-6):
    """Nodes take the lock one after another with large gaps: every new
    requester's stale guess points at the *initial* owner."""
    done = []

    def worker(node, start):
        yield start
        for _ in range(per_node):
            yield from system.acquire(node, "L")
            yield 0.5e-6
            yield from system.release(node, "L")
            yield gap
        done.append(node.id)

    for i, node in enumerate(machine.nodes):
        machine.spawn(worker(node, i * 3e-6), name=f"w{node.id}")
    machine.run()
    return done


class TestOwnerGuessing:
    def test_guessing_is_correct(self):
        machine, system = build(owner_oracle=False)
        done = round_robin_light_contention(machine, system)
        assert sorted(done) == list(range(8))

    def test_wrong_guesses_cause_forwarding(self):
        machine, system = build(owner_oracle=False)
        round_robin_light_contention(machine, system)
        forwards = machine.metrics.total_counter("ec.forwards")
        assert forwards > 0

    def test_oracle_version_forwards_less(self):
        """The paper's "fast version" exists precisely to remove the
        guessing penalty; the oracle must forward strictly less."""
        machine_g, system_g = build(owner_oracle=False)
        round_robin_light_contention(machine_g, system_g)
        machine_o, system_o = build(owner_oracle=True)
        round_robin_light_contention(machine_o, system_o)
        forwards_guess = machine_g.metrics.total_counter("ec.forwards")
        forwards_oracle = machine_o.metrics.total_counter("ec.forwards")
        assert forwards_guess > forwards_oracle

    def test_light_contention_slower_with_guessing(self):
        machine_g, system_g = build(owner_oracle=False)
        round_robin_light_contention(machine_g, system_g)
        machine_o, system_o = build(owner_oracle=True)
        round_robin_light_contention(machine_o, system_o)
        assert machine_g.metrics.elapsed > machine_o.metrics.elapsed

    def test_heavy_contention_queues_instead_of_chasing(self):
        """When everyone requests at once, requests queue at the owner
        and guessing costs little extra — the paper: "If several
        processors are contending heavily ... entry consistency performs
        as well as possible"."""
        results = {}
        for oracle in (True, False):
            machine, system = build(owner_oracle=oracle)
            count = {"n": 0}

            def worker(node):
                for _ in range(3):
                    yield from system.acquire(node, "L")
                    count["n"] += 1
                    yield 0.5e-6
                    yield from system.release(node, "L")

            for node in machine.nodes:
                machine.spawn(worker(node), name=f"w{node.id}")
            machine.run()
            assert count["n"] == 24
            results[oracle] = machine.metrics.elapsed
        # Guessing costs < 30% extra under heavy contention (vs the
        # much larger relative penalty under light contention).
        assert results[False] <= results[True] * 1.3

    def test_forward_chains_terminate(self):
        """Even with thoroughly stale guesses the MAX_FORWARDS fallback
        reaches the true owner."""
        machine, system = build(owner_oracle=False)
        # Poison every node's guess to point at its neighbour, forming
        # a cycle of wrong guesses.
        for node in machine.nodes:
            system._owner_guess[("L", node.id)] = (node.id + 1) % 8

        def worker(node):
            yield from system.acquire(node, "L")
            yield from system.release(node, "L")

        machine.spawn(worker(machine.nodes[5]), name="w")
        machine.run(max_events=500_000)
        machine.sim.check_quiescent()
