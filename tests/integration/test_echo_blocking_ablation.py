"""Ablation A2: the Figure 6 hardware blocking filter is load-bearing.

The paper's hazard: "if the same variable were written twice in a mutual
exclusion section and only the first change had returned before saving,
the rollback values would be improper."  Here the window is hit by a
node re-entering an optimistic section just as its own first write's
echo returns: without the filter the echo regresses the local copy and
a *committed* speculative execution computes from the stale value.
"""

from __future__ import annotations

from repro.workloads.scenarios import DoubleWriteConfig, run_double_write


class TestWithFilter:
    def test_every_increment_survives(self):
        result = run_double_write(DoubleWriteConfig(echo_blocking=True))
        assert result.extra["correct"]
        assert result.extra["chain_ok"]

    def test_filter_actually_dropped_echoes(self):
        result = run_double_write(DoubleWriteConfig(echo_blocking=True))
        # Two writes per round, every echo of own mutex data dropped.
        assert result.extra["echoes_dropped"] == 2 * DoubleWriteConfig().rounds


class TestWithoutFilter:
    def test_updates_are_lost(self):
        result = run_double_write(DoubleWriteConfig(echo_blocking=False))
        assert not result.extra["correct"]

    def test_checker_chain_detects_the_corruption(self):
        result = run_double_write(DoubleWriteConfig(echo_blocking=False))
        assert not result.extra["chain_ok"]

    def test_nothing_is_dropped(self):
        result = run_double_write(DoubleWriteConfig(echo_blocking=False))
        assert result.extra["echoes_dropped"] == 0


class TestWindowSensitivity:
    def test_slow_reentry_avoids_the_hazard_even_without_filter(self):
        """Waiting past the echo round trip before re-entering leaves
        nothing stale to read: the filter matters precisely because
        optimistic re-entry happens *within* the echo window."""
        result = run_double_write(
            DoubleWriteConfig(echo_blocking=False, think_time=20e-6)
        )
        assert result.extra["correct"]
