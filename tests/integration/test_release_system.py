"""Integration tests for the weak/release-consistency comparator:
update multicast with acks, the release fence, and the 3-message lock."""

from __future__ import annotations

import pytest

from repro.consistency.base import make_system
from repro.consistency.release import ReleaseSystem
from repro.core.machine import DSMMachine
from repro.errors import LockStateError


def build(n=4):
    machine = DSMMachine(n_nodes=n)
    machine.create_group("g", root=0)
    machine.declare_variable("g", "guarded", 0, mutex_lock="L")
    machine.declare_variable("g", "plain", 0)
    machine.declare_lock("g", "L", protects=("guarded",))
    system = make_system("release", machine)
    assert isinstance(system, ReleaseSystem)
    return machine, system


class TestUpdatePropagation:
    def test_writes_reach_every_member(self):
        machine, system = build()

        def writer(node):
            yield from system.write(node, "plain", 9)

        machine.spawn(writer(machine.nodes[2]), name="w")
        machine.run()
        assert all(n.store.read("plain") == 9 for n in machine.nodes)
        assert system.updates_sent == 3  # everyone but the writer

    def test_wait_value_wakes_on_pushed_update(self):
        machine, system = build()
        got = []

        def writer(node):
            yield 2e-6
            yield from system.write(node, "plain", 5)

        def waiter(node):
            value = yield from system.wait_value(node, "plain", lambda v: v == 5)
            got.append((node.sim.now, value))

        machine.spawn(writer(machine.nodes[1]), name="w")
        machine.spawn(waiter(machine.nodes[3]), name="r")
        machine.run()
        assert got[0][1] == 5


class TestReleaseFence:
    def test_release_blocks_until_updates_acked(self):
        """Figure 1(c): "lock release ... is blocked until the updates
        reach all nodes"."""
        machine, system = build()
        release_done = []

        def worker(node):
            yield from system.acquire(node, "L")
            system.section_write(node, "guarded", 1)
            write_time = node.sim.now
            yield from system.release(node, "L")
            release_done.append(node.sim.now - write_time)

        machine.spawn(worker(machine.nodes[2]), name="w")
        machine.run()
        # The fence costs at least one update + ack round trip.
        min_rtt = 2 * machine.network.delay(2, 0, 16)
        assert release_done[0] >= min_rtt * 0.9

    def test_release_without_writes_is_quick(self):
        machine, system = build()
        durations = []

        def worker(node):
            yield from system.acquire(node, "L")
            start = node.sim.now
            yield from system.release(node, "L")
            durations.append(node.sim.now - start)

        machine.spawn(worker(machine.nodes[2]), name="w")
        machine.run()
        assert durations[0] == 0.0

    def test_release_by_non_holder_rejected(self):
        machine, system = build()

        def bad(node):
            yield from system.release(node, "L")

        machine.spawn(bad(machine.nodes[1]), name="bad")
        with pytest.raises(LockStateError):
            machine.run()


class TestThreeMessageLock:
    def test_contended_handoff_goes_holder_to_requester(self):
        machine, system = build()
        order = []

        def worker(node, delay, hold):
            yield delay
            yield from system.acquire(node, "L")
            order.append(node.id)
            yield hold
            yield from system.release(node, "L")

        machine.spawn(worker(machine.nodes[1], 0.0, 5e-6), name="w1")
        machine.spawn(worker(machine.nodes[3], 1e-6, 1e-6), name="w3")
        machine.run()
        assert order == [1, 3]

    def test_free_lock_granted_by_manager(self):
        machine, system = build()
        held = []

        def worker(node):
            yield from system.acquire(node, "L")
            held.append(node.id)
            yield from system.release(node, "L")

        machine.spawn(worker(machine.nodes[3]), name="w")
        machine.run()
        assert held == [3]

    def test_weak_alias_behaves_identically(self):
        machine = DSMMachine(n_nodes=3)
        machine.create_group("g", root=0)
        machine.declare_variable("g", "x", 0, mutex_lock="L")
        machine.declare_lock("g", "L", protects=("x",))
        system = make_system("weak", machine)
        assert isinstance(system, ReleaseSystem)

    def test_mutual_exclusion_under_heavy_contention(self):
        machine, system = build(n=6)
        inside = []
        violations = []

        def worker(node):
            for _ in range(3):
                yield from system.acquire(node, "L")
                if inside:
                    violations.append(tuple(inside))
                inside.append(node.id)
                yield 0.5e-6
                inside.remove(node.id)
                yield from system.release(node, "L")

        for node in machine.nodes:
            machine.spawn(worker(node), name=f"w{node.id}")
        machine.run()
        assert not violations
