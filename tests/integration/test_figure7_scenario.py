"""Integration test for the paper's Figure 7 rollback interaction.

"After a processor sends a lock request and optimistically updates a
variable a = z, [...] another processor's lock request, its update of
a = y, and its lock release reach the root [first].  The arrival of the
other lock grant causes interrupt and rollback on the local processor.
[...] Once it has the lock, the local processor makes the correct
updates (a = r) and releases the lock.  Hardware blocking will drop any
incorrect values (a = z)."
"""

from __future__ import annotations

from repro.workloads.scenarios import Figure7Config, run_figure7


class TestFigure7:
    def setup_method(self):
        self.result = run_figure7(Figure7Config())
        self.extra = self.result.extra

    def test_requester_rolled_back(self):
        assert self.extra["requester_rolled_back"]
        assert self.result.counter("opt.rollbacks") == 1

    def test_both_sections_eventually_committed(self):
        # The "other" processor succeeded optimistically; the requester
        # succeeded after its rollback.
        assert self.result.counter("lock.acquired") == 2

    def test_final_value_reflects_requesters_reexecution(self):
        """a = r computed from a = y: the nested tag structure proves the
        re-execution read the other processor's committed value."""
        final = self.extra["final_values"][0]
        assert final[0] == "r"
        assert final[1][0] == "y"

    def test_all_nodes_converge(self):
        assert self.extra["converged"]

    def test_hardware_blocking_dropped_the_stale_echo(self):
        """The requester's a = z reached the root after its own grant, so
        the root accepted and echoed it; the Figure 6 filter at the
        requester must drop that echo ("Data (a=z) dropped")."""
        assert self.extra["echoes_dropped"] >= 1

    def test_protocol_event_trace_is_ordered(self):
        trace = self.extra["trace"]
        interrupts = trace.filter("iface.lock_interrupt")
        sequenced = trace.filter("root.sequenced")
        assert interrupts, "the requester must have taken a lock interrupt"
        assert sequenced, "the root must have sequenced updates"


class TestFigure7EarlyRequest:
    def test_fast_requester_write_discarded_at_root(self):
        """With a short speculative section, the requester's update
        reaches the root while the other processor still holds the lock,
        so the root discards it instead of echoing it."""
        result = run_figure7(
            Figure7Config(requester_compute=0.05e-6, other_compute=3e-6)
        )
        assert result.extra["root_discards"] >= 1
        assert result.extra["converged"]
        final = result.extra["final_values"][0]
        # Both updates still committed, in some serial order.
        tags = set()
        value = final
        while isinstance(value, tuple):
            tags.add(value[0])
            value = value[1]
        assert tags == {"r", "y", "init"}
