"""Root failover end to end: crash the sequencer, keep the invariants.

The acceptance story for the failover subsystem: a chaos run that kills
a group root while another node holds the lock must re-elect a
sequencer, rebuild the lock table from member evidence, and still pass
the mutual-exclusion / RMW-chain / convergence invariants — all
byte-identically per seed.  The ``--no-failover`` negative control must
end in the watchdog's StallError, not a hang.
"""

from __future__ import annotations

import pytest

from repro.core.machine import DSMMachine
from repro.errors import RootFailoverError
from repro.faults.chaos import ChaosConfig, run_chaos
from repro.faults.failover import RootFailoverManager
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, crash, restart
from repro.workloads import counter as counter_wl


def _unit() -> float:
    """The recovery unit run_chaos derives (the machine's NACK timeout)."""
    return DSMMachine(n_nodes=6, reliable=True).nack_timeout


class TestCrashRootAcceptance:
    @pytest.mark.slow
    @pytest.mark.parametrize("system", ["gwc", "gwc_optimistic"])
    @pytest.mark.parametrize("seed", range(3))
    def test_root_crash_converges(self, system, seed):
        result = run_chaos(
            ChaosConfig(system=system, scenario="crash_root", seed=seed)
        )
        assert result.ok, (result.stall, result.invariant_errors)
        assert result.converged
        assert result.final_counter == result.chain_length
        assert result.fault_summary["failovers"] == 1
        # Every surviving client re-routed to the successor at least once.
        assert result.fault_summary["rerouted_requests"] > 0

    @pytest.mark.slow
    @pytest.mark.parametrize("system", ["gwc", "gwc_optimistic"])
    def test_same_seed_is_byte_identical(self, system):
        config = ChaosConfig(system=system, scenario="crash_root", seed=3)
        first = run_chaos(config)
        second = run_chaos(config)
        assert first.fingerprint() == second.fingerprint()
        assert first.fault_summary == second.fault_summary

    def test_negative_control_stalls_without_failover(self):
        result = run_chaos(
            ChaosConfig(
                system="gwc", scenario="crash_root", seed=0, failover=False
            )
        )
        assert not result.ok
        assert result.stall is not None
        assert "budget" in result.stall

    def test_lossy_failover_control_still_converges(self):
        # Election queries/replies ride the lossy fabric; retransmitted
        # rounds (exempt from loss) must still assemble the quorum.
        result = run_chaos(
            ChaosConfig(
                system="gwc",
                scenario="crash_root",
                seed=1,
                loss_rate=0.3,
                lossy_failover=True,
            )
        )
        assert result.ok, (result.stall, result.invariant_errors)
        assert result.fault_summary["failovers"] == 1


class TestRestartAgainstCrashedRoot:
    @pytest.mark.slow
    def test_old_root_restarts_as_member_of_successor(self):
        unit = _unit()
        plan = FaultPlan(
            [
                crash(10 * unit, root_of=counter_wl.GROUP),
                restart(200 * unit, node=0),
            ],
            seed=0,
        )
        result = run_chaos(
            ChaosConfig(system="gwc", scenario="crash_root", seed=0, plan=plan)
        )
        assert result.ok, (result.stall, result.invariant_errors)
        # The restarted ex-root redid its unfinished ops, so every one
        # of the 6x8 increments landed.
        assert result.final_counter == 48
        assert result.fault_summary["restarts"] == 1

    @pytest.mark.slow
    def test_member_restart_waits_for_failover(self):
        # Crash a member, then the root: the member's restart must retry
        # until the successor exists, then re-inshare under its epoch.
        unit = _unit()
        plan = FaultPlan(
            [
                crash(10 * unit, node=5),
                crash(12 * unit, root_of=counter_wl.GROUP),
                restart(14 * unit, node=5),
            ],
            seed=0,
        )
        result = run_chaos(
            ChaosConfig(system="gwc", scenario="crash_root", seed=0, plan=plan)
        )
        assert result.ok, (result.stall, result.invariant_errors)
        assert result.fault_summary["restarts"] == 1
        assert result.fault_summary["failovers"] == 1

    def test_restart_without_failover_manager_fails_fast(self):
        machine = DSMMachine(n_nodes=4, reliable=True)
        machine.create_group("g")
        machine.declare_variable("g", "v", 0)
        injector = FaultInjector(machine, FaultPlan([], seed=0))
        injector.install()
        injector.crash_node(2)  # member
        injector.crash_node(0)  # root of "g"
        with pytest.raises(RootFailoverError, match="no live source"):
            injector.restart_node(2)


class TestElectionDetails:
    def _crashed_root_machine(self):
        machine = DSMMachine(n_nodes=4, reliable=True)
        machine.create_group("g")
        machine.declare_variable("g", "v", 7)
        injector = FaultInjector(machine, FaultPlan([], seed=0))
        injector.install()
        manager = RootFailoverManager(machine, injector)
        manager.install()
        return machine, injector, manager

    def test_successor_is_lowest_live_member(self):
        machine, injector, manager = self._crashed_root_machine()
        injector.crash_node(1)
        injector.crash_node(0)
        machine.run()
        assert manager.takeovers == 1
        assert machine.groups["g"].root == 2
        engine = machine.root_engine("g")
        assert engine.epoch == 1
        assert engine.authoritative_read("v") == 7

    def test_members_adopt_the_new_epoch(self):
        machine, injector, manager = self._crashed_root_machine()
        injector.crash_node(0)
        machine.run()
        for node in machine.nodes[1:]:
            assert node.iface._epoch["g"] == 1

    def test_cascaded_root_crash_fails_over_again(self):
        # The first successor itself crashes right after taking over;
        # a second election moves the group to the next member, one
        # epoch further on.
        machine, injector, manager = self._crashed_root_machine()
        injector.crash_node(0)
        machine.sim.schedule(
            manager.detection_delay + manager.query_timeout / 2,
            lambda: injector.crash_node(1),
        )
        machine.run()
        assert machine.groups["g"].root == 2
        assert manager.elections == 2
        assert manager.takeovers == 2
        assert machine.root_engine("g").epoch == 2
        for node in machine.nodes[2:]:
            assert node.iface._epoch["g"] == 2
