"""Failure injection: the reliable multicast ("...and to retransmit all
hidden sharing messages") must mask arbitrary apply-packet loss."""

from __future__ import annotations

import pytest

from repro.consistency.base import make_system
from repro.consistency.checker import MutualExclusionChecker
from repro.core.machine import DSMMachine
from repro.core.section import Section
from repro.errors import NetworkError
from repro.net.loss import LossModel
from repro.sim.rng import RngStreams


def run_lossy_counter(loss_rate: float, seed: int = 0, n_nodes: int = 6, rounds: int = 5):
    checker = MutualExclusionChecker()
    machine = DSMMachine(
        n_nodes=n_nodes, checker=checker, loss_rate=loss_rate, seed=seed
    )
    machine.create_group("g")
    machine.declare_variable("g", "v", 0, mutex_lock="L")
    machine.declare_lock("g", "L", protects=("v",))
    system = make_system("gwc_optimistic", machine)

    def body(ctx):
        value = ctx.read("v")
        yield from ctx.compute(1e-6)
        if ctx.aborted:
            return
        ctx.write("v", value + 1)
        ctx.observe_rmw("v", value, value + 1)

    section = Section(lock="L", body=body, shared_reads=("v",), shared_writes=("v",))

    def worker(node):
        for _ in range(rounds):
            yield from node.busy(8e-6, kind="useful")
            yield from system.run_section(node, section)

    for node in machine.nodes:
        machine.spawn(worker(node), name=f"w{node.id}")
    machine.run(max_events=5_000_000)
    machine.sim.check_quiescent()
    checker.verify_chain("v", 0)
    return machine


class TestLossRecovery:
    @pytest.mark.parametrize("loss_rate", (0.02, 0.08, 0.20))
    def test_counter_exact_under_loss(self, loss_rate):
        machine = run_lossy_counter(loss_rate)
        expected = 6 * 5
        assert all(n.store.read("v") == expected for n in machine.nodes)

    @pytest.mark.parametrize("seed", range(4))
    def test_recovery_across_seeds(self, seed):
        machine = run_lossy_counter(0.10, seed=seed)
        expected = 6 * 5
        assert all(n.store.read("v") == expected for n in machine.nodes)

    def test_losses_actually_happened(self):
        machine = run_lossy_counter(0.15, seed=1)
        assert machine.loss_model is not None
        assert machine.loss_model.dropped > 0
        assert machine.root_engine("g").retransmissions > 0

    def test_zero_loss_needs_no_recovery(self):
        machine = run_lossy_counter(0.0)
        assert machine.loss_model is None
        assert machine.root_engine("g").retransmissions == 0
        assert sum(n.iface.nacks_sent for n in machine.nodes) == 0

    def test_duplicates_are_tolerated_not_fatal(self):
        machine = run_lossy_counter(0.20, seed=2)
        # Over-fetching NACKs produce duplicates; they must be absorbed.
        total_dupes = sum(n.iface.duplicates_ignored for n in machine.nodes)
        assert total_dupes >= 0  # counted, never raised


class TestLossModel:
    def test_rate_validation(self):
        rng = RngStreams(0).stream("x")
        with pytest.raises(NetworkError):
            LossModel(1.0, rng)
        with pytest.raises(NetworkError):
            LossModel(-0.1, rng)

    def test_only_lossy_kinds_dropped(self):
        from repro.net.message import Message

        rng = RngStreams(0).stream("x")
        model = LossModel(0.99, rng)
        control = Message(src=0, dst=1, kind="gwc.update")
        for _ in range(50):
            assert not model.should_drop(control)
        assert model.dropped == 0

    def test_retransmissions_never_dropped(self):
        from repro.memory.interface import ApplyPacket
        from repro.net.message import Message

        rng = RngStreams(0).stream("x")
        model = LossModel(0.99, rng)
        packet = ApplyPacket(
            group="g",
            seq=0,
            var="v",
            value=1,
            origin=0,
            is_mutex_data=False,
            is_lock=False,
            retransmit=True,
        )
        msg = Message(src=0, dst=1, kind="gwc.apply", payload=packet)
        for _ in range(50):
            assert not model.should_drop(msg)

    def test_drop_rate_statistical(self):
        from repro.memory.interface import ApplyPacket
        from repro.net.message import Message

        rng = RngStreams(7).stream("x")
        model = LossModel(0.3, rng)
        packet = ApplyPacket(
            group="g", seq=0, var="v", value=1, origin=0,
            is_mutex_data=False, is_lock=False,
        )
        n = 5000
        drops = sum(
            model.should_drop(Message(src=0, dst=1, kind="gwc.apply", payload=packet))
            for _ in range(n)
        )
        assert 0.25 < drops / n < 0.35
