"""Integration tests for the entry-consistency comparator's specifics:
data-with-grant, invalidation round trips, owner handoff, local release,
and demand-fetch behaviour."""

from __future__ import annotations

import pytest

from repro.consistency.base import make_system
from repro.consistency.entry import EXCLUSIVE, NON_EXCLUSIVE, EntrySystem
from repro.core.machine import DSMMachine


def build(n=4):
    machine = DSMMachine(n_nodes=n)
    machine.create_group("g", root=0)
    machine.declare_variable("g", "guarded", 0, mutex_lock="L")
    machine.declare_variable("g", "plain", 0)
    machine.declare_lock("g", "L", protects=("guarded",), data_bytes=64)
    system = make_system("entry", machine)
    assert isinstance(system, EntrySystem)
    return machine, system


class TestDataWithGrant:
    def test_grant_ships_current_guarded_values(self):
        machine, system = build()
        seen = []

        def writer(node):
            yield from system.acquire(node, "L")
            system.section_write(node, "guarded", 42)
            yield from system.release(node, "L")

        def reader(node):
            yield 5e-6  # after the writer
            yield from system.acquire(node, "L")
            seen.append(node.store.read("guarded"))
            yield from system.release(node, "L")

        machine.spawn(writer(machine.nodes[1]), name="w")
        machine.spawn(reader(machine.nodes[3]), name="r")
        machine.run()
        assert seen == [42]
        assert system.data_grants >= 2

    def test_non_acquirers_keep_stale_copies(self):
        """Entry consistency does not push: a node that never takes the
        lock never sees the update."""
        machine, system = build()

        def writer(node):
            yield from system.acquire(node, "L")
            system.section_write(node, "guarded", 42)
            yield from system.release(node, "L")

        machine.spawn(writer(machine.nodes[1]), name="w")
        machine.run()
        assert machine.nodes[2].store.read("guarded") == 0


class TestOwnershipAndRelease:
    def test_release_is_local_and_reacquisition_free(self):
        machine, system = build()
        grants_before = []

        def worker(node):
            yield from system.acquire(node, "L")
            yield from system.release(node, "L")
            grants_before.append(system.data_grants)
            # Re-acquire: owner with sole copy pays no messages.
            yield from system.acquire(node, "L")
            yield from system.release(node, "L")

        # Node 0 is the initial owner.
        machine.spawn(worker(machine.nodes[0]), name="w")
        machine.run()
        assert system.data_grants == grants_before[0]

    def test_ownership_transfers_to_last_exclusive_holder(self):
        machine, system = build()

        def worker(node):
            yield from system.acquire(node, "L")
            yield from system.release(node, "L")

        machine.spawn(worker(machine.nodes[2]), name="w")
        machine.run()
        assert system._lock_state("L").owner == 2

    def test_queueing_under_contention(self):
        machine, system = build()
        order = []

        def worker(node, delay):
            yield delay
            yield from system.acquire(node, "L")
            order.append(node.id)
            yield 2e-6
            yield from system.release(node, "L")

        for node, delay in ((1, 0.0), (2, 0.1e-6), (3, 0.2e-6)):
            machine.spawn(worker(machine.nodes[node], delay), name=f"w{node}")
        machine.run()
        assert sorted(order) == [1, 2, 3]
        assert len(order) == 3


class TestInvalidation:
    def test_exclusive_grant_invalidates_nonexclusive_holders(self):
        machine, system = build()
        system.seed_copyset("L", (1, 2, 3))

        def worker(node):
            yield from system.acquire(node, "L", mode=EXCLUSIVE)
            yield from system.release(node, "L")

        machine.spawn(worker(machine.nodes[3]), name="w")
        machine.run()
        # Nodes 1 and 2 were invalidated (3 keeps its copy as requester;
        # 0 is the owner).
        assert system.invalidations == 2
        assert system._lock_state("L").copyset == {3}

    def test_nonexclusive_acquire_joins_copyset(self):
        machine, system = build()

        def reader(node):
            yield from system.acquire(node, "L", mode=NON_EXCLUSIVE)
            yield from system.release(node, "L")

        machine.spawn(reader(machine.nodes[2]), name="r")
        machine.run()
        assert 2 in system._lock_state("L").copyset

    def test_cached_nonexclusive_reacquire_is_free(self):
        machine, system = build()
        counts = []

        def reader(node):
            yield from system.acquire(node, "L", mode=NON_EXCLUSIVE)
            yield from system.release(node, "L")
            counts.append(system.data_grants)
            yield from system.acquire(node, "L", mode=NON_EXCLUSIVE)
            yield from system.release(node, "L")
            counts.append(system.data_grants)

        machine.spawn(reader(machine.nodes[2]), name="r")
        machine.run()
        assert counts[0] == counts[1]


class TestDemandFetch:
    def test_remote_read_round_trips(self):
        machine, system = build()
        got = []

        def writer(node):
            yield from system.write(node, "plain", 7)

        def reader(node):
            yield 1e-6
            value = yield from system.read(node, "plain")
            got.append((node.sim.now, value))

        machine.spawn(writer(machine.nodes[1]), name="w")
        machine.spawn(reader(machine.nodes[3]), name="r")
        machine.run()
        assert got[0][1] == 7
        assert got[0][0] > 1e-6  # paid a round trip
        assert system.fetches == 1

    def test_local_read_is_free(self):
        machine, system = build()
        got = []

        def worker(node):
            yield from system.write(node, "plain", 5)
            value = yield from system.read(node, "plain")
            got.append(value)

        machine.spawn(worker(machine.nodes[2]), name="w")
        machine.run()
        assert got == [5]
        assert system.fetches == 0

    def test_fetch_service_serializes_at_home(self):
        """Concurrent fetches to one home queue behind each other — the
        hot-spot that breaks demand-fetch scaling."""
        machine, system = build()
        arrival_times = []

        def writer(node):
            yield from system.write(node, "plain", 1)

        def reader(node):
            yield 1e-6
            yield from system.read(node, "plain")
            arrival_times.append(node.sim.now)

        machine.spawn(writer(machine.nodes[0]), name="w")
        for nid in (1, 2, 3):
            machine.spawn(reader(machine.nodes[nid]), name=f"r{nid}")
        machine.run()
        arrival_times.sort()
        gaps = [b - a for a, b in zip(arrival_times, arrival_times[1:])]
        assert all(gap >= system.fetch_service_time * 0.9 for gap in gaps)

    def test_wait_value_polls_until_satisfied(self):
        machine, system = build()
        got = []

        def writer(node):
            yield 5e-6
            yield from system.write(node, "plain", 3)

        def waiter(node):
            value = yield from system.wait_value(node, "plain", lambda v: v == 3)
            got.append(value)

        machine.spawn(writer(machine.nodes[1]), name="w")
        machine.spawn(waiter(machine.nodes[3]), name="r")
        machine.run()
        assert got == [3]
        assert system.fetches > 1  # polled more than once
