"""Direct tests of specific quantitative sentences in the paper."""

from __future__ import annotations

import pytest

from repro.consistency.base import make_system
from repro.core.machine import DSMMachine
from repro.core.section import Section
from repro.params import MachineParams


def build(n=3, params=None):
    machine = DSMMachine(n_nodes=n, params=params or MachineParams())
    machine.create_group("g", root=0)
    machine.declare_variable("g", "m", 0, mutex_lock="L")
    machine.declare_lock("g", "L", protects=("m",))
    return machine


class TestThreeOneWayMessages:
    def test_uncontended_lock_cycle_message_count(self):
        """"There is no network traffic except three one-way messages to
        request, grant, and release the lock."

        The paper counts the logical protocol steps; with the grant and
        the free propagated down the sharing tree, one acquire/release
        cycle on a three-member group produces: 1 request (to root),
        the grant multicast, 1 release (to root), and the free
        multicast.  No retries, forwards, acks, or invalidations —
        unlike the comparator protocols.
        """
        machine = build(n=3)
        system = make_system("gwc", machine)

        def worker(node):
            yield from system.acquire(node, "L")
            yield from system.release(node, "L")

        machine.spawn(worker(machine.nodes[2]), name="w")
        machine.run()
        stats = machine.network.stats
        # request + release toward the root:
        assert stats.by_kind["gwc.update"] == 2
        # grant + free multicast to the 3 members:
        assert stats.by_kind["gwc.apply"] == 6
        # and absolutely nothing else:
        assert set(stats.by_kind) == {"gwc.update", "gwc.apply"}

    def test_heavily_requested_lock_one_way_handoff(self):
        """"A processor always receives exclusive access within one or
        one half round-trip time of the lock being freed": under
        queueing, the handoff is release->root plus grant->next — two
        one-way legs, no extra traffic."""
        machine = build(n=3)
        system = make_system("gwc", machine)
        grant_times = {}

        def worker(node, delay, hold):
            yield delay
            yield from system.acquire(node, "L")
            grant_times[node.id] = node.sim.now
            yield hold
            release_time = node.sim.now
            yield from system.release(node, "L")
            grant_times[f"release_{node.id}"] = release_time

        machine.spawn(worker(machine.nodes[1], 0.0, 5e-6), name="w1")
        machine.spawn(worker(machine.nodes[2], 0.5e-6, 1e-6), name="w2")
        machine.run()
        handoff = grant_times[2] - grant_times["release_1"]
        one_way_legs = machine.network.delay(1, 0, 16) + machine.network.delay(
            0, 2, 16
        )
        assert handoff == pytest.approx(one_way_legs, rel=0.05)


class TestDisparityGrowsWithNetworkDelay:
    def test_gwc_advantage_grows_with_hop_latency(self):
        """"For very large systems, the disparity between group write
        consistency and the other models will be significantly larger,
        since network delays will be much longer than local update
        times."  Scaling the hop latency up must widen Figure 1's gap."""
        from repro.workloads.contention import ContentionConfig, run_contention

        gaps = []
        for hop_latency in (200e-9, 800e-9):
            params = MachineParams(hop_latency=hop_latency)
            gwc = run_contention(ContentionConfig(system="gwc", params=params))
            release = run_contention(
                ContentionConfig(system="release", params=params)
            )
            gaps.append(
                release.extra["completion_time"] - gwc.extra["completion_time"]
            )
        assert gaps[1] > gaps[0]

    def test_optimistic_hides_more_as_delays_grow(self):
        """"In huge networks, safe preposting of shared changes is
        usually the major source of benefit": the absolute time saved by
        optimism grows with the lock round trip."""
        from repro.workloads.pipeline import PipelineConfig, run_pipeline

        savings = []
        for hop_latency in (200e-9, 1000e-9):
            params = MachineParams(hop_latency=hop_latency)
            opt = run_pipeline(
                PipelineConfig(
                    system="gwc_optimistic", n_nodes=8, data_size=64, params=params
                )
            )
            reg = run_pipeline(
                PipelineConfig(system="gwc", n_nodes=8, data_size=64, params=params)
            )
            savings.append(reg.elapsed - opt.elapsed)
        assert savings[1] > savings[0]


class TestOverlappingGroupsUnordered:
    def test_cross_group_writes_have_no_mutual_order(self):
        """"For many coding applications, complete ordering is not
        needed" — Sesame deliberately does NOT order writes across
        overlapping groups.  A member of both groups can observe the
        two groups' writes in an order that differs from another
        member's, which is why cross-group sections need multi-group
        mutual exclusion."""
        machine = DSMMachine(n_nodes=8, topology="ring")
        # Observers 1 and 3 belong to both groups; the roots (0 and 4)
        # sit at opposite distances from the two observers.
        machine.create_group("ga", members=(0, 1, 3), root=0)
        machine.create_group("gb", members=(1, 3, 4), root=4)
        machine.declare_variable("ga", "a", 0)
        machine.declare_variable("gb", "b", 0)
        order_seen = {1: [], 3: []}
        for nid in (1, 3):
            node = machine.nodes[nid]
            original = node.store.write

            def spy(name, value, nid=nid, original=original):
                if name in ("a", "b") and value == 1:
                    order_seen[nid].append(name)
                original(name, value)

            node.store.write = spy  # type: ignore[method-assign]

        def writer_a(node):
            node.iface.share_write("a", 1)
            yield 0

        def writer_b(node):
            node.iface.share_write("b", 1)
            yield 0

        # "a" is written at ga's root; "b" at gb's root: observer 1 is
        # adjacent to root 0 and far from root 4, observer 3 the
        # opposite, so the arrival orders cross.
        machine.spawn(writer_a(machine.nodes[0]), name="wa")
        machine.spawn(writer_b(machine.nodes[4]), name="wb")
        machine.run()
        assert order_seen[1] == ["a", "b"]
        assert order_seen[3] == ["b", "a"]
        # Each group individually still delivered everywhere.
        assert machine.nodes[1].store.read("a") == 1
        assert machine.nodes[3].store.read("b") == 1
