"""Smoke tests: the example scripts must keep running green.

Each example is executed in-process (``runpy``) with stdout captured;
their internal asserts are the real test.  The two full figure sweeps
(`task_management.py`, `pipeline_speedup.py`) are exercised through the
benchmark harness instead and skipped here for suite speed.
"""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent.parent / "examples"

FAST_EXAMPLES = (
    "quickstart.py",
    "paper_figure3.py",
    "single_writer.py",
    "rollback_scenario.py",
    "lock_protocols.py",
    "stencil_app.py",
    "lossy_network.py",
    "locking_comparison.py",
)


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script, capsys, monkeypatch):
    path = EXAMPLES / script
    assert path.exists(), path
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"
    assert "Traceback" not in out


def test_every_example_is_covered_somewhere():
    """New examples must be added either here or to the bench harness."""
    known = set(FAST_EXAMPLES) | {"task_management.py", "pipeline_speedup.py"}
    actual = {p.name for p in EXAMPLES.glob("*.py")}
    assert actual <= known, actual - known
    assert len(actual) >= 10
