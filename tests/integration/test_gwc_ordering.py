"""Integration tests for group write consistency semantics.

These exercise the full stack — machine, network, root engine, node
interfaces — and assert the ordering guarantees Section 2 of the paper
builds its locks on.
"""

from __future__ import annotations

import pytest

from repro.consistency.base import make_system
from repro.core.machine import DSMMachine
from repro.memory.varspace import FREE_VALUE, grant_value
from repro.sim.trace import Tracer


def make_machine(n=4, **kwargs):
    machine = DSMMachine(n_nodes=n, **kwargs)
    machine.create_group("g", root=0)
    return machine


class TestTotalOrder:
    def test_all_members_see_writes_in_the_same_order(self):
        """Two nodes write the same variable concurrently; every member
        must observe the identical sequence (total store order within
        the group)."""
        machine = make_machine(5)
        machine.declare_variable("g", "x", 0)
        applied: dict[int, list] = {n.id: [] for n in machine.nodes}

        # Observe every sequenced apply by wrapping each store's write.
        for node in machine.nodes:
            original = node.store.write

            def spy(name, value, nid=node.id, original=original):
                if name == "x":
                    applied[nid].append(value)
                original(name, value)

            node.store.write = spy  # type: ignore[method-assign]

        def writer(node, values):
            for v in values:
                node.iface.share_write("x", v)
                yield 0.1e-6

        machine.spawn(writer(machine.nodes[1], ["a1", "a2", "a3"]), name="w1")
        machine.spawn(writer(machine.nodes[3], ["b1", "b2", "b3"]), name="w2")
        machine.run()
        # Non-writing members see exactly the root's global sequence;
        # they must all agree (writers also interleave their own local
        # program-order writes, so compare the pure observers).
        observers = [applied[0], applied[2], applied[4]]
        assert observers[0] == observers[1] == observers[2]
        assert len(observers[0]) == 6
        finals = {n.store.read("x") for n in machine.nodes}
        assert len(finals) == 1

    def test_sequenced_count_matches_writes(self):
        machine = make_machine(3)
        machine.declare_variable("g", "x", 0)

        def writer(node):
            for i in range(5):
                node.iface.share_write("x", i)
                yield 0.1e-6

        machine.spawn(writer(machine.nodes[1]), name="w")
        machine.run()
        engine = machine.root_engine("g")
        assert engine.sequenced == 5
        assert engine.discarded == 0

    def test_origin_applies_its_own_echo_for_ordinary_vars(self):
        """Ordinary (non-mutex) values must be echoed to the origin to
        achieve GWC order on all participating processors."""
        machine = make_machine(3)
        machine.declare_variable("g", "x", 0)

        def writer(node):
            node.iface.share_write("x", 1)
            yield 0

        machine.spawn(writer(machine.nodes[1]), name="w")
        machine.run()
        assert machine.nodes[1].iface.applied_count == 1  # echo applied
        assert machine.nodes[1].iface.filter.dropped == 0


class TestRootDiscard:
    def test_speculative_write_from_non_holder_discarded(self):
        machine = make_machine(3)
        machine.declare_variable("g", "m", 0, mutex_lock="L")
        machine.declare_lock("g", "L", protects=("m",))

        def speculator(node):
            # Write mutex data without ever requesting the lock.
            node.iface.share_write("m", 123)
            yield 0

        machine.spawn(speculator(machine.nodes[2]), name="spec")
        machine.run()
        engine = machine.root_engine("g")
        assert engine.discarded == 1
        assert engine.sequenced == 0
        # No other node saw the speculative value.
        assert machine.nodes[0].store.read("m") == 0
        assert machine.nodes[1].store.read("m") == 0
        # The speculator's own local copy still shows it (pending
        # rollback, which the optimistic runner would perform).
        assert machine.nodes[2].store.read("m") == 123

    def test_holder_writes_are_sequenced(self):
        machine = make_machine(3)
        machine.declare_variable("g", "m", 0, mutex_lock="L")
        machine.declare_lock("g", "L", protects=("m",))
        system = make_system("gwc", machine)

        def holder(node):
            yield from system.acquire(node, "L")
            node.iface.share_write("m", 7)
            yield from system.release(node, "L")

        machine.spawn(holder(machine.nodes[1]), name="holder")
        machine.run()
        assert machine.root_engine("g").discarded == 0
        assert all(n.store.read("m") == 7 for n in machine.nodes)


class TestGrantAfterData:
    def test_grant_arrives_after_previous_holders_data(self):
        """The defining GWC lock property: when a node sees its grant,
        the previous holder's protected writes are already local."""
        machine = make_machine(5, tracer=Tracer())
        machine.declare_variable("g", "m", 0, mutex_lock="L")
        machine.declare_lock("g", "L", protects=("m",))
        system = make_system("gwc", machine)
        seen_at_grant = {}

        def first(node):
            yield from system.acquire(node, "L")
            yield 5e-6
            node.iface.share_write("m", 42)
            yield from system.release(node, "L")

        def second(node):
            yield 1e-6  # request while first still holds
            yield from system.acquire(node, "L")
            seen_at_grant[node.id] = node.store.read("m")
            yield from system.release(node, "L")

        machine.spawn(first(machine.nodes[1]), name="first")
        machine.spawn(second(machine.nodes[4]), name="second")
        machine.run()
        assert seen_at_grant[4] == 42

    def test_lock_value_transitions_visible_everywhere(self):
        machine = make_machine(3)
        machine.declare_variable("g", "m", 0, mutex_lock="L")
        machine.declare_lock("g", "L", protects=("m",))
        system = make_system("gwc", machine)

        def user(node):
            yield from system.acquire(node, "L")
            yield 1e-6
            yield from system.release(node, "L")

        machine.spawn(user(machine.nodes[2]), name="user")
        machine.run()
        # After everything drains the lock reads FREE on every member.
        assert all(n.store.read("L") == FREE_VALUE for n in machine.nodes)

    def test_queued_requester_gets_positive_id(self):
        machine = make_machine(4)
        machine.declare_variable("g", "m", 0, mutex_lock="L")
        machine.declare_lock("g", "L", protects=("m",))
        system = make_system("gwc", machine)
        grants = []

        def user(node, delay):
            yield delay
            yield from system.acquire(node, "L")
            grants.append((node.sim.now, node.id, node.store.read("L")))
            yield 1e-6
            yield from system.release(node, "L")

        machine.spawn(user(machine.nodes[1], 0.0), name="u1")
        machine.spawn(user(machine.nodes[3], 0.2e-6), name="u3")
        machine.run()
        assert [g[1] for g in sorted(grants)] == [1, 3]
        for _, node_id, lock_value in grants:
            assert lock_value == grant_value(node_id)


class TestMultipleGroups:
    def test_groups_sequence_independently(self):
        machine = DSMMachine(n_nodes=4)
        machine.create_group("g1", members=(0, 1, 2), root=0)
        machine.create_group("g2", members=(1, 2, 3), root=3)
        machine.declare_variable("g1", "x", 0)
        machine.declare_variable("g2", "y", 0)

        def writer(node, var, count):
            for i in range(count):
                node.iface.share_write(var, i)
                yield 0.05e-6

        machine.spawn(writer(machine.nodes[1], "x", 3), name="wx")
        machine.spawn(writer(machine.nodes[2], "y", 4), name="wy")
        machine.run()
        assert machine.root_engine("g1").sequenced == 3
        assert machine.root_engine("g2").sequenced == 4
        assert machine.nodes[2].store.read("x") == 2
        assert machine.nodes[1].store.read("y") == 3

    def test_non_member_has_no_copy(self):
        machine = DSMMachine(n_nodes=4)
        machine.create_group("g1", members=(0, 1), root=0)
        machine.declare_variable("g1", "x", 0)
        assert not machine.nodes[3].store.knows("x")
