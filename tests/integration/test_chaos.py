"""Integration tests for the fault-injection subsystem and chaos harness.

The acceptance scenario: crash the lock holder mid-critical-section.
With the recovery stack armed the run must complete — the lease
reclaims the dead holder's lock, a waiter is granted, the
mutual-exclusion and RMW-chain invariants hold, and a recovery time is
reported.  With recovery disabled the very same schedule must end in
the watchdog's StallError instead of a silent hang.
"""

from __future__ import annotations

import pytest

from repro.errors import FaultError, StallError
from repro.faults.chaos import ChaosConfig, run_chaos


class TestCrashHolderAcceptance:
    @pytest.mark.parametrize("system", ["gwc", "gwc_optimistic"])
    def test_holder_crash_recovers_and_invariants_hold(self, system):
        result = run_chaos(
            ChaosConfig(system=system, scenario="crash_holder", seed=0)
        )
        assert result.ok, (result.stall, result.invariant_errors)
        summary = result.fault_summary
        assert summary["crashes"] == 1
        assert summary["lock_reclaims"] >= 1
        assert len(result.recovery_times) >= 1
        assert all(t > 0.0 for t in result.recovery_times)
        # The crashed node loses its unfinished ops; everyone else
        # finishes, and every committed increment is in the RMW chain.
        assert result.final_counter == result.chain_length
        assert result.converged
        assert not result.invariant_errors

    def test_recovery_disabled_ends_in_diagnosed_stall(self):
        with pytest.raises(StallError, match="blocked"):
            run_chaos(
                ChaosConfig(
                    scenario="crash_holder",
                    seed=0,
                    recovery=False,
                    raise_on_stall=True,
                )
            )

    def test_recovery_disabled_stall_recorded_in_result(self):
        result = run_chaos(
            ChaosConfig(scenario="crash_holder", seed=0, recovery=False)
        )
        assert not result.ok
        assert result.stall is not None
        assert "blocked" in result.stall
        # Partial progress happened before the wedge.
        assert result.chain_length > 0


class TestDeterminism:
    def test_same_seed_same_fingerprint(self):
        config = ChaosConfig(scenario="crash_holder", seed=3)
        first = run_chaos(config).fingerprint()
        second = run_chaos(config).fingerprint()
        assert first == second

    def test_different_seeds_diverge(self):
        base = run_chaos(ChaosConfig(scenario="delay", seed=0)).fingerprint()
        other = run_chaos(ChaosConfig(scenario="delay", seed=1)).fingerprint()
        assert base != other

    def test_probabilistic_faults_are_seed_stable(self):
        config = ChaosConfig(scenario="duplicate", seed=5)
        first = run_chaos(config)
        second = run_chaos(config)
        assert first.fault_summary == second.fault_summary
        assert first.fault_summary["fault_duplicated"] > 0


class TestScenarios:
    def test_churn_restarted_node_finishes_its_ops(self):
        result = run_chaos(ChaosConfig(scenario="churn", seed=0))
        assert result.ok, (result.stall, result.invariant_errors)
        assert result.fault_summary["crashes"] == 1
        assert result.fault_summary["restarts"] == 1
        # Nobody's ops are lost: the respawned worker resumes from its
        # crash-consistent _done counter.
        config = result.config
        assert result.final_counter == config.n_nodes * config.ops_per_node

    def test_partition_rides_through_on_timeouts(self):
        result = run_chaos(ChaosConfig(scenario="partition", seed=0))
        assert result.ok, (result.stall, result.invariant_errors)
        assert result.fault_summary["partitions_cut"] == 1
        assert result.fault_summary["partitions_healed"] == 1
        assert result.lock_timeouts > 0
        assert result.lock_retries > 0
        config = result.config
        assert result.final_counter == config.n_nodes * config.ops_per_node

    def test_partition_with_optimistic_regular_path(self):
        # The optimistic runner's regular-path wait must go through the
        # timed client, or islanded requesters hang forever.
        result = run_chaos(
            ChaosConfig(system="gwc_optimistic", scenario="partition", seed=0)
        )
        assert result.ok, (result.stall, result.invariant_errors)
        assert result.lock_retries > 0

    def test_duplicate_apply_stream_absorbed(self):
        result = run_chaos(ChaosConfig(scenario="duplicate", seed=0))
        assert result.ok, (result.stall, result.invariant_errors)
        assert result.fault_summary["fault_duplicated"] > 0

    def test_task_queue_survives_partition(self):
        result = run_chaos(
            ChaosConfig(workload="task_queue", scenario="partition", seed=0)
        )
        assert result.ok, (result.stall, result.invariant_errors)
        config = result.config
        assert result.final_counter == config.ops_per_node * (
            config.n_nodes - 1
        )

    @pytest.mark.parametrize("system", ["release", "sequential", "entry"])
    def test_delay_scenario_works_for_every_system(self, system):
        result = run_chaos(
            ChaosConfig(system=system, scenario="delay", seed=0)
        )
        assert result.ok, (result.stall, result.invariant_errors)
        assert result.fault_summary["fault_delayed"] > 0


class TestCompatibilityChecks:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(FaultError, match="unknown chaos scenario"):
            run_chaos(ChaosConfig(scenario="meteor"))

    def test_unknown_workload_rejected(self):
        with pytest.raises(FaultError, match="unknown chaos workload"):
            run_chaos(ChaosConfig(workload="raytracer"))

    @pytest.mark.parametrize("scenario", ["crash_holder", "partition"])
    def test_recovery_scenarios_need_gwc_family(self, scenario):
        with pytest.raises(FaultError, match="recovery"):
            run_chaos(ChaosConfig(system="release", scenario=scenario))

    def test_crash_scenarios_need_counter_workload(self):
        with pytest.raises(FaultError, match="counter workload"):
            run_chaos(
                ChaosConfig(workload="task_queue", scenario="crash_holder")
            )


class TestShardedRootChaos:
    """Chaos scenarios against a root-sharded group.

    With ``roots > 1`` the counter group becomes a sibling family whose
    single lock unit hash-lands on one partition; recovery, failover,
    and the armed oracles must all keep working, and the run row's
    per-root load columns must carry one entry per partition.
    """

    @pytest.mark.parametrize("scenario", ["crash_holder", "duplicate"])
    def test_scenarios_survive_sharded_roots(self, scenario):
        result = run_chaos(
            ChaosConfig(scenario=scenario, roots=2, oracles=True, seed=3)
        )
        assert result.ok, (result.stall, result.invariant_errors)
        assert len(result.root_loads) == 2
        # The one lock unit lives on exactly one partition; the other
        # root sequences nothing for this workload.
        assert sum(result.root_loads) > 0
        assert min(result.root_loads) == 0

    def test_crash_root_fails_over_the_owning_sibling(self):
        """``crash(root_of=...)`` targets whichever sibling root holds
        real lock state, so failover runs against the sharded family."""
        result = run_chaos(
            ChaosConfig(scenario="crash_root", roots=2, oracles=True, seed=5)
        )
        assert result.ok, (result.stall, result.invariant_errors)
        assert result.fault_summary["failovers"] >= 1
        assert len(result.root_loads) == 2

    def test_csv_row_surfaces_per_root_load(self):
        from repro.faults.chaos import chaos_csv_row

        result = run_chaos(ChaosConfig(scenario="delay", roots=3, seed=1))
        assert result.ok
        row = chaos_csv_row(result)
        assert row["root_count"] == 3
        assert row["root_load_max"] == max(result.root_loads)
        assert row["root_load_max"] >= row["root_load_mean"] > 0

    def test_single_root_row_keeps_classic_shape(self):
        from repro.faults.chaos import chaos_csv_row

        result = run_chaos(ChaosConfig(scenario="delay", seed=1))
        assert result.ok
        row = chaos_csv_row(result)
        assert row["root_count"] == 1
        assert row["root_load_max"] == row["root_load_mean"] > 0
