"""Golden-number regression tests.

The reproduction's measured figures (EXPERIMENTS.md) depend on the cost
model's calibration constants.  These tests pin the headline quick-scale
numbers exactly, so an accidental change to packet sizes, delay
formulas, or protocol message counts shows up as a loud diff instead of
silently shifting every figure.

If you *intend* to change the cost model: re-run the full-scale
benchmarks, update EXPERIMENTS.md, and refresh these constants.
"""

from __future__ import annotations

import pytest

from repro.workloads.contention import ContentionConfig, run_contention
from repro.workloads.counter import CounterConfig, run_counter
from repro.workloads.pipeline import PipelineConfig, run_pipeline
from repro.workloads.task_queue import TaskQueueConfig, run_task_queue

#: Quick-scale golden values, recorded from the calibrated build.
GOLDEN_FIGURE1_US = {
    "gwc": 15.208,
    "gwc_optimistic": 14.804,
    "entry": 16.104,
    "release": 16.600,
}
GOLDEN_PIPELINE_POWER = {  # n=4, data=64
    "gwc_optimistic": 1.6221374045801544,
    "gwc": 1.5492855059784243,
}
GOLDEN_TASKQUEUE_SPEEDUP = {  # n=5, tasks=64
    "gwc": 3.9678347272237455,
    "entry": 3.7005337463774888,
}


class TestGoldenFigure1:
    @pytest.mark.parametrize("system,expected", sorted(GOLDEN_FIGURE1_US.items()))
    def test_completion_time_pinned(self, system, expected):
        result = run_contention(ContentionConfig(system=system))
        measured = result.extra["completion_time"] * 1e6
        assert measured == pytest.approx(expected, abs=0.002), (
            f"{system} Figure 1 completion changed: {measured:.3f} us "
            f"(golden {expected:.3f} us) — recalibrate EXPERIMENTS.md "
            "if this was intentional"
        )


class TestGoldenPipeline:
    @pytest.mark.parametrize(
        "system,expected", sorted(GOLDEN_PIPELINE_POWER.items())
    )
    def test_network_power_pinned(self, system, expected):
        result = run_pipeline(
            PipelineConfig(system=system, n_nodes=4, data_size=64)
        )
        assert result.speedup == pytest.approx(expected, rel=1e-6)


class TestGoldenTaskQueue:
    @pytest.mark.parametrize(
        "system,expected", sorted(GOLDEN_TASKQUEUE_SPEEDUP.items())
    )
    def test_speedup_pinned(self, system, expected):
        result = run_task_queue(
            TaskQueueConfig(system=system, n_nodes=5, total_tasks=64)
        )
        assert result.speedup == pytest.approx(expected, abs=5e-4)


class TestGoldenDeterminism:
    def test_counter_elapsed_is_reproducible(self):
        a = run_counter(CounterConfig(system="gwc_optimistic", n_nodes=5,
                                      increments_per_node=6, seed=3))
        b = run_counter(CounterConfig(system="gwc_optimistic", n_nodes=5,
                                      increments_per_node=6, seed=3))
        assert a.elapsed == b.elapsed
        assert a.counter("opt.rollbacks") == b.counter("opt.rollbacks")
