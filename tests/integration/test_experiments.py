"""Quick-scale runs of the paper-figure experiments: every qualitative
claim (the *shape* of each figure) must hold even at reduced sizes."""

from __future__ import annotations

import pytest

from repro.experiments import figure1, figure2, figure8
from repro.experiments.ablation import (
    run_echo_blocking_ablation,
    run_force_modes,
    run_lock_protocol_shootout,
    run_threshold_sweep,
)


@pytest.fixture(scope="module")
def fig1_rows():
    return figure1.run_figure1()


@pytest.fixture(scope="module")
def fig2_rows():
    return figure2.run_figure2(sizes=(3, 5, 9), total_tasks=96)


@pytest.fixture(scope="module")
def fig8_rows():
    return figure8.run_figure8(sizes=(2, 4, 8), data_size=64)


class TestFigure1:
    def test_expectations_hold(self, fig1_rows):
        checks = figure1.expectations(fig1_rows)
        failing = [str(c) for c in checks if not c.holds]
        assert not failing, failing

    def test_render_produces_table(self, fig1_rows):
        text = figure1.render(fig1_rows)
        assert "Figure 1" in text
        assert "gwc" in text

    def test_gwc_fastest_release_slowest(self, fig1_rows):
        by_system = {row.system: row.completion_time for row in fig1_rows}
        assert by_system["gwc"] < by_system["entry"] < by_system["release"]


class TestFigure2:
    def test_expectations_hold(self, fig2_rows):
        checks = figure2.expectations(fig2_rows)
        failing = [str(c) for c in checks if not c.holds]
        assert not failing, failing

    def test_speedup_monotone_in_small_range(self, fig2_rows):
        gwc = [row.gwc for row in fig2_rows]
        assert gwc == sorted(gwc)

    def test_near_ideal_at_small_sizes(self, fig2_rows):
        for row in fig2_rows:
            assert row.gwc > 0.9 * row.max_speedup

    def test_render(self, fig2_rows):
        text = figure2.render(fig2_rows)
        assert "task management" in text


class TestFigure8:
    def test_expectations_hold(self, fig8_rows):
        checks = figure8.expectations(fig8_rows)
        failing = [str(c) for c in checks if not c.holds]
        assert not failing, failing

    def test_ideal_power_is_189(self, fig8_rows):
        # Short quick-scale runs lose a little to pipeline fill/drain;
        # the full-scale sweep sits within 0.01 of 1.889.
        for row in fig8_rows:
            assert row.max_power == pytest.approx(1.889, abs=0.05)

    def test_render(self, fig8_rows):
        text = figure8.render(fig8_rows)
        assert "mutex methods" in text


class TestAblations:
    def test_threshold_extremes_behave(self):
        # At moderate contention the lock often *looks* free locally, so
        # the history threshold is what decides the path.  (Under very
        # heavy contention the local-copy check dominates and the
        # threshold is irrelevant — also the paper's design.)
        rows = run_threshold_sweep(
            thresholds=(0.0, 1.0),
            think_times=(15e-6,),
            n_nodes=6,
            increments_per_node=16,
        )
        by_threshold = {row.threshold: row for row in rows}
        # Threshold 0 suppresses optimism once any usage has been seen;
        # threshold 1 never suppresses.
        assert by_threshold[1.0].attempts > by_threshold[0.0].attempts
        assert by_threshold[0.0].regular > by_threshold[1.0].regular
        # Allowing optimism pays off here: more sections overlap their
        # lock round trips.
        assert by_threshold[1.0].elapsed <= by_threshold[0.0].elapsed

    def test_light_contention_favors_optimism(self):
        rows = run_threshold_sweep(
            thresholds=(0.3,),
            think_times=(100e-6,),
            n_nodes=4,
            increments_per_node=6,
        )
        row = rows[0]
        assert row.successes > 0
        assert row.rollbacks <= row.successes

    def test_shootout_all_correct(self):
        rows = run_lock_protocol_shootout(n_nodes=5, increments_per_node=4)
        assert all(row.correct for row in rows)
        assert {row.system for row in rows} == {
            "gwc",
            "gwc_optimistic",
            "entry",
            "release",
        }

    def test_echo_blocking_ablation(self):
        with_filter, without_filter = run_echo_blocking_ablation()
        assert with_filter.extra["correct"]
        assert not without_filter.extra["correct"]

    def test_force_modes_all_correct_and_adaptive_competitive(self):
        results = run_force_modes(n_nodes=4, increments_per_node=8)
        assert set(results) == {"adaptive", "optimistic", "regular"}
        elapsed = {mode: r.elapsed for mode, r in results.items()}
        # The adaptive history should be within 25% of the better of the
        # two fixed policies.
        best_fixed = min(elapsed["optimistic"], elapsed["regular"])
        assert elapsed["adaptive"] <= best_fixed * 1.25
