"""Integration tests for the chaos-campaign engine.

The acceptance scenario (docs/FAULTS.md §5): arm the known-bad lease
configuration (`broken_lease`) under a crash-free generated plan.  The
online single-writer oracle must halt the run at the second concurrent
writer's commit, the minimizer must shrink the failing plan to <= 5
events while reproducing the same signature, and the written repro
bundle must replay to the identical failure.
"""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.errors import FaultError
from repro.faults.campaign import (
    CampaignConfig,
    ChaosConfig,
    failure_signature,
    generate_plan,
    minimize_failure,
    recovery_unit,
    replay_bundle,
    run_campaign,
    smoke_config,
)
from repro.faults.chaos import run_chaos
from repro.faults.plan import FaultPlan, crash, delay, duplicate
from repro.workloads import counter as counter_wl

UNIT = recovery_unit(6)


class TestCampaignGreenPath:
    def test_smoke_campaign_is_green_and_deterministic(self):
        first = run_campaign(smoke_config())
        again = run_campaign(smoke_config())
        assert first.ok
        assert len(first.outcomes) == 8  # 6 chaos + 2 shard trials
        assert first.rows() == again.rows()
        # Every row carries the shared schema plus the trial prefix.
        for row in first.rows():
            assert row["ok"]
            assert list(row)[:4] == ["trial", "kind", "profile", "topology"]

    def test_shard_trials_check_parity_under_both_policies(self):
        campaign = run_campaign(smoke_config())
        shard_rows = [r for r in campaign.rows() if r["kind"] == "shard"]
        assert {r["scenario"] for r in shard_rows} == {
            "shard:optimisticx2",
            "shard:conservativex2",
        }
        for row in shard_rows:
            assert row["converged"]  # state-hash parity vs the serial run
            assert row["final_counter"] == 24  # every task executed

    @pytest.mark.slow
    def test_default_campaign_is_green_and_deterministic(self):
        config = CampaignConfig()  # trials=25, seed=7, mixed profile
        first = run_campaign(config)
        assert first.ok, [o.detail for o in first.failures()]
        assert first.rows() == run_campaign(config).rows()


class TestBrokenLeaseAcceptance:
    def _known_bad(self) -> ChaosConfig:
        plan = generate_plan(7, 6, 400.0 * UNIT, "wire")
        return ChaosConfig(
            system="gwc",
            workload="counter",
            scenario="campaign:wire",
            n_nodes=6,
            ops_per_node=6,
            seed=7,
            plan=plan,
            topology="mesh_torus",
            oracles=True,
            broken_lease=True,
            lease_duration=1.0 * UNIT,
            section_time=10e-6,
        )

    def test_oracle_halts_the_run_with_evidence(self):
        result = run_chaos(self._known_bad())
        assert result.oracle == "single_writer"
        assert result.oracle_evidence
        assert not result.ok
        assert failure_signature(result) == ("oracle", "single_writer")

    def test_minimizer_shrinks_to_at_most_five_events(self):
        config = self._known_bad()
        minimized = minimize_failure(config, ("oracle", "single_writer"))
        assert len(minimized.plan.events) <= 5
        assert minimized.n_nodes <= config.n_nodes
        assert minimized.probes >= 1

    def test_campaign_minimizes_and_bundles_then_replay_reproduces(
        self, tmp_path
    ):
        config = CampaignConfig(
            trials=1,
            seed=7,
            profile="wire",
            systems=("gwc",),
            topologies=("mesh_torus",),
            shard_trials=0,
            broken_lease=True,
            lease_units=1.0,
            section_time_s=10e-6,
            bundle_dir=str(tmp_path),
        )
        campaign = run_campaign(config)
        assert not campaign.ok
        outcome = campaign.failures()[0]
        assert outcome.signature == ("oracle", "single_writer")
        assert outcome.minimized is not None
        assert len(outcome.minimized.plan.events) <= 5
        assert outcome.row["minimized_events"] == len(
            outcome.minimized.plan.events
        )
        # The bundle is a complete manifested run...
        assert outcome.bundle_path is not None
        bundle = tmp_path / "trial-000"
        assert str(bundle) == outcome.bundle_path
        manifest = json.loads((bundle / "MANIFEST.json").read_text())
        assert {"config.json", "plan.json", "oracle.json"} <= set(
            manifest["files"]
        )
        oracle = json.loads((bundle / "oracle.json").read_text())
        assert oracle["signature"] == ["oracle", "single_writer"]
        assert oracle["evidence"]
        # ...and replaying it reproduces the identical failure.
        replayed = replay_bundle(bundle)
        assert failure_signature(replayed) == outcome.signature

    def test_unreadable_bundle_is_a_fault_error(self, tmp_path):
        with pytest.raises(FaultError, match="unreadable"):
            replay_bundle(tmp_path / "missing")


class TestLocalMinimality:
    def test_minimized_plan_keeps_only_the_root_kill(self):
        # Root kill without failover stalls; the surrounding wire noise
        # is irrelevant and must be shaved off, but the kill itself must
        # survive minimization (the plan is locally minimal, not empty).
        events = (
            delay(2.0 * UNIT, extra=1.5 * UNIT, until=60.0 * UNIT,
                  probability=1.0, preserve_fifo=True),
            crash(12.0 * UNIT, root_of=counter_wl.GROUP),
            duplicate(5.0 * UNIT, until=80.0 * UNIT, probability=0.3),
        )
        config = ChaosConfig(
            system="gwc",
            scenario="campaign:rootstorm",
            n_nodes=6,
            ops_per_node=6,
            seed=3,
            plan=FaultPlan(events, seed=3),
            failover=False,
            topology="mesh_torus",
            oracles=True,
            # Tight budget, as run_chaos uses for the crash_root negative
            # control: the watchdog must flag the stall before the lock
            # retry budget drains into LockTimeoutError.
            max_sim_time=1000.0 * UNIT,
        )
        result = run_chaos(config)
        assert failure_signature(result) == ("stall",)
        minimized = minimize_failure(config, ("stall",))
        assert len(minimized.plan.events) == 1
        assert minimized.plan.events[0].root_of == counter_wl.GROUP
        # 1-minimality: the empty plan does not stall.
        clean = run_chaos(
            ChaosConfig(
                system="gwc",
                scenario="campaign:rootstorm",
                n_nodes=minimized.n_nodes,
                ops_per_node=6,
                seed=3,
                plan=FaultPlan((), seed=3),
                failover=False,
                topology="mesh_torus",
                oracles=True,
                max_sim_time=1000.0 * UNIT,
            )
        )
        assert failure_signature(clean) is None

    def test_minimize_rejects_a_passing_config(self):
        config = ChaosConfig(
            system="gwc",
            scenario="campaign:wire",
            seed=0,
            plan=FaultPlan((), seed=0),
            oracles=True,
        )
        with pytest.raises(FaultError, match="does not reproduce"):
            minimize_failure(config, ("stall",))


class TestCampaignCli:
    def test_smoke_exits_zero_and_writes_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "campaign.csv"
        assert cli.main(["campaign", "--smoke", "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "campaign: 8/8 trial(s) ok" in out
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("trial,kind,profile,topology")

    def test_usage_errors_exit_two(self, capsys):
        assert cli.main(["campaign", "--profile", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown profile" in err and "known:" in err
        assert cli.main(["campaign", "--workload", "bogus"]) == 2
        assert cli.main(["campaign", "--systems", "gwc,bogus"]) == 2
        assert cli.main(["campaign", "--systems", "release"]) == 2
        assert "recovery stack" in capsys.readouterr().err
        assert cli.main(["campaign", "--trials", "0"]) == 2
        assert cli.main(["campaign", "--nodes", "2"]) == 2

    def test_chaos_and_campaign_share_validation_wording(self, capsys):
        assert cli.main(["chaos", "--workload", "bogus"]) == 2
        chaos_err = capsys.readouterr().err
        assert cli.main(["campaign", "--workload", "bogus"]) == 2
        campaign_err = capsys.readouterr().err
        assert "unknown workload" in chaos_err
        assert "unknown workload" in campaign_err
