"""Stateful properties of the failover-era lock and epoch machinery.

Two Hypothesis state machines:

* :class:`LeaseEpochMachine` drives a lease-armed
  :class:`~repro.locks.gwc_lock.GwcLockManager` through request /
  release / re-acquire / crash / expiry sequences (including lease
  checks that fire with a stale grant epoch, the shape a deposed root's
  timer leaves behind) and asserts a reclaim never hits a live holder —
  in particular never one that released and re-acquired under a newer
  grant epoch.
* :class:`EpochFenceMachine` drives a post-failover successor engine
  with a mix of current-epoch and stale-epoch update requests (data
  writes and lock FREEs) and asserts stale traffic is discarded without
  touching the authoritative image or the rebuilt lock table, while the
  deposed predecessor ignores everything.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.consistency.gwc import GroupRootEngine
from repro.core.machine import DSMMachine
from repro.locks.gwc_lock import GwcLockManager
from repro.memory.interface import UpdateRequest
from repro.memory.varspace import (
    FREE_VALUE,
    LockDecl,
    grant_value,
    request_value,
)

NODES = list(range(5))
LEASE = 1e-3


class _FakeSim:
    """Minimal scheduler: just enough for the lease machinery."""

    class _Event:
        __slots__ = ("time", "fn", "cancelled")

        def __init__(self, time, fn):
            self.time = time
            self.fn = fn
            self.cancelled = False

        def cancel(self):
            self.cancelled = True

    def __init__(self):
        self.now = 0.0
        self.events = []

    def schedule(self, delay, fn):
        event = self._Event(self.now + delay, fn)
        self.events.append(event)
        return event

    def advance(self, dt):
        """Move time forward, firing due events in time order."""
        deadline = self.now + dt
        while True:
            due = [e for e in self.events if not e.cancelled and e.time <= deadline]
            if not due:
                break
            event = min(due, key=lambda e: e.time)
            self.events.remove(event)
            self.now = event.time
            event.fn()
        self.now = deadline


class LeaseEpochMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sim = _FakeSim()
        self.manager = GwcLockManager(LockDecl(name="L", group="g"))
        self.crashed: set[int] = set()
        self.reclaim_log: list[tuple[int, bool]] = []
        self.manager.enable_lease(
            self.sim,
            emit=lambda values: None,
            duration=LEASE,
            is_crashed=lambda n: n in self.crashed,
        )

        def record(name, old_holder, new_holder, now):
            self.reclaim_log.append((old_holder, old_holder in self.crashed))

        self.manager.on_reclaim = record

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def _idle_live(self):
        busy = set(self.manager.queue) | self.crashed
        if self.manager.holder is not None:
            busy.add(self.manager.holder)
        return [n for n in NODES if n not in busy]

    @precondition(lambda self: self._idle_live())
    @rule(data=st.data())
    def request(self, data):
        node = data.draw(st.sampled_from(self._idle_live()))
        self.manager.on_write(node, request_value(node))

    @precondition(
        lambda self: self.manager.holder is not None
        and self.manager.holder not in self.crashed
    )
    @rule()
    def release(self):
        self.manager.on_write(self.manager.holder, FREE_VALUE)

    @precondition(
        lambda self: self.manager.holder is not None
        and self.manager.holder not in self.crashed
        and not self.manager.queue
    )
    @rule()
    def reacquire(self):
        # Release + immediate re-request: same holder, strictly newer
        # grant epoch.  Any lease check armed for the old occupancy is
        # now stale and must never reclaim the new one.
        holder = self.manager.holder
        before = self.manager._grant_epoch
        self.manager.on_write(holder, FREE_VALUE)
        self.manager.on_write(holder, request_value(holder))
        assert self.manager.holder == holder
        assert self.manager._grant_epoch > before

    @precondition(lambda self: self.manager.holder is not None)
    @rule(data=st.data())
    def stale_lease_check_is_inert(self, data):
        # A check left over from an older occupancy (e.g. a deposed
        # root's timer) fires late: it must not touch the lock.
        stale = data.draw(
            st.integers(min_value=0, max_value=self.manager._grant_epoch - 1)
        )
        holder, reclaims = self.manager.holder, self.manager.lease_reclaims
        self.manager._lease_check(stale)
        assert self.manager.holder == holder
        assert self.manager.lease_reclaims == reclaims

    @precondition(
        lambda self: self.manager.holder is not None
        and self.manager.holder not in self.crashed
    )
    @rule()
    def crash_holder(self):
        self.crashed.add(self.manager.holder)

    @rule()
    def expire_lease(self):
        self.sim.advance(LEASE * 1.5)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def reclaims_only_hit_crashed_holders(self):
        assert all(was_crashed for _, was_crashed in self.reclaim_log)

    @invariant()
    def queue_never_contains_the_holder(self):
        assert self.manager.holder not in self.manager.queue


class EpochFenceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        machine = DSMMachine(n_nodes=5, reliable=True)
        machine.create_group("g")
        machine.declare_variable("g", "v", 0, mutex_lock="L")
        machine.declare_lock("g", "L", protects=("v",))
        group = machine.groups["g"]
        self.old = machine.root_engine("g")
        self.old.depose()
        self.new = GroupRootEngine(
            machine.sim, group, machine.params.packet_bytes
        )
        self.new.adopt_state(
            self.old.epoch + 1, self.old.sequenced, {"v": 0}
        )
        for decl in group.locks.values():
            self.new.add_lock(decl)
        # Rebuilt lock table: node 1 holds, node 2 queued.
        manager = self.new.lock_managers["L"]
        manager.queue.append(2)
        manager._grant_to(1)
        self.new.sequence_rebuilt_lock("L", grant_value(1))
        self.model_value = 0
        self.stale_sent = 0

    def _send(self, var, value, origin, epoch):
        self.new.on_update(
            UpdateRequest(group="g", var=var, value=value, origin=origin, epoch=epoch)
        )

    @rule(value=st.integers(0, 100))
    def holder_writes_current_epoch(self, value):
        self._send("v", value, origin=1, epoch=self.new.epoch)
        self.model_value = value

    @rule(value=st.integers(0, 100))
    def stale_data_write_discarded(self, value):
        self._send("v", value, origin=1, epoch=self.old.epoch)
        self.stale_sent += 1

    @rule(origin=st.sampled_from(NODES))
    def stale_free_discarded(self, origin):
        # A FREE issued into the failover window (the old holder's
        # release that died with the old root, re-sent with a stale
        # stamp) must not unlock the rebuilt table.
        self._send("L", FREE_VALUE, origin=origin, epoch=self.old.epoch)
        self.stale_sent += 1

    @rule(value=st.integers(0, 100))
    def deposed_root_ignores_everything(self, value):
        ignored = self.old.deposed_ignored
        self.old.on_update(
            UpdateRequest(
                group="g", var="v", value=value, origin=1, epoch=self.old.epoch
            )
        )
        assert self.old.deposed_ignored == ignored + 1

    @invariant()
    def stale_traffic_never_lands(self):
        assert self.new.window_discards == self.stale_sent
        assert self.new.authoritative_read("v") == self.model_value

    @invariant()
    def rebuilt_lock_table_intact(self):
        manager = self.new.lock_managers["L"]
        assert manager.holder == 1
        assert manager.queue == [2]
        assert self.new.authoritative_read("L") == grant_value(1)


TestLeaseEpochs = LeaseEpochMachine.TestCase
TestLeaseEpochs.settings = settings(max_examples=60, deadline=None)

TestEpochFence = EpochFenceMachine.TestCase
TestEpochFence.settings = settings(max_examples=60, deadline=None)
