"""Parallel sweep execution is observationally identical to serial.

The :class:`~repro.experiments.runner.SweepExecutor` promises that
fanning sweep points across worker processes changes wall-clock only:
every row comes back in submission order with bit-identical floats,
because each point derives all randomness from its own seed and shares
no state with its neighbours.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure8 import run_figure8
from repro.experiments.runner import JOBS_ENV, SweepExecutor, default_jobs
from repro.workloads.task_queue import TaskQueueConfig, run_task_queue

# Small scales keep each point fast; the executor's behaviour does not
# depend on point size.
FIG2_KW = dict(sizes=(3, 5), total_tasks=32)
FIG8_KW = dict(sizes=(2, 4), data_size=32)


def _seeded_speedup(seed: int) -> float:
    """One task-queue run at a given seed (module-level: picklable)."""
    result = run_task_queue(
        TaskQueueConfig(system="gwc", n_nodes=3, total_tasks=24, seed=seed)
    )
    return result.speedup


class TestParallelMatchesSerial:
    def test_figure2_rows_bit_identical(self):
        serial = run_figure2(**FIG2_KW)
        parallel = run_figure2(**FIG2_KW, jobs=4)
        assert serial == parallel

    def test_figure8_rows_bit_identical(self):
        serial = run_figure8(**FIG8_KW)
        parallel = run_figure8(**FIG8_KW, jobs=4)
        assert serial == parallel

    def test_multiple_seeds_bit_identical(self):
        seeds = [0, 1, 2, 17, 42]
        serial = [_seeded_speedup(seed) for seed in seeds]
        parallel = SweepExecutor(jobs=4).map(_seeded_speedup, seeds)
        assert serial == parallel

    def test_result_order_matches_submission_order(self):
        rows = SweepExecutor(jobs=3).map(_seeded_speedup, [5, 3, 9])
        assert rows == [_seeded_speedup(5), _seeded_speedup(3), _seeded_speedup(9)]


class TestExecutorConfig:
    def test_serial_when_jobs_one(self):
        assert SweepExecutor(jobs=1).map(len, ["ab", "c"]) == [2, 1]

    def test_empty_items(self):
        assert SweepExecutor(jobs=4).map(len, []) == []

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert default_jobs() == 3
        assert SweepExecutor().jobs == 3

    def test_env_var_absent_means_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert default_jobs() == 1

    def test_env_var_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ExperimentError, match="REPRO_JOBS"):
            default_jobs()

    def test_explicit_jobs_overrides_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "8")
        assert SweepExecutor(jobs=2).jobs == 2
