"""Parallel sweep execution is observationally identical to serial.

The :class:`~repro.experiments.runner.SweepExecutor` promises that
fanning sweep points across worker processes changes wall-clock only:
every row comes back in submission order with bit-identical floats,
because each point derives all randomness from its own seed and shares
no state with its neighbours.  Determinism is checked through
:mod:`repro.sim.statehash` — the canonical digest of a run's final
machine state — rather than ad-hoc float or dict comparisons.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ExperimentError
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure8 import run_figure8
from repro.experiments.runner import (
    JOBS_ENV,
    SHARDS_ENV,
    SweepExecutor,
    default_jobs,
    default_shards,
)
from repro.workloads.task_queue import TaskQueueConfig, run_task_queue

# Small scales keep each point fast; the executor's behaviour does not
# depend on point size.
FIG2_KW = dict(sizes=(3, 5), total_tasks=32)
FIG8_KW = dict(sizes=(2, 4), data_size=32)

_CPUS = os.cpu_count() or 1


def _seeded_hash(seed: int) -> str:
    """One task-queue run's canonical state hash (module-level: picklable)."""
    result = run_task_queue(
        TaskQueueConfig(system="gwc", n_nodes=3, total_tasks=24, seed=seed)
    )
    return result.extra["state_hash"]


class TestParallelMatchesSerial:
    def test_figure2_rows_bit_identical(self):
        serial = run_figure2(**FIG2_KW)
        parallel = run_figure2(**FIG2_KW, jobs=4)
        assert serial == parallel

    def test_figure8_rows_bit_identical(self):
        serial = run_figure8(**FIG8_KW)
        parallel = run_figure8(**FIG8_KW, jobs=4)
        assert serial == parallel

    def test_multiple_seeds_state_hashes_identical(self):
        seeds = [0, 1, 2, 17, 42]
        serial = [_seeded_hash(seed) for seed in seeds]
        parallel = SweepExecutor(jobs=4).map(_seeded_hash, seeds)
        assert serial == parallel

    def test_result_order_matches_submission_order(self):
        rows = SweepExecutor(jobs=3).map(_seeded_hash, [5, 3, 9])
        assert rows == [_seeded_hash(5), _seeded_hash(3), _seeded_hash(9)]

    def test_repeated_runs_state_hash_stable(self):
        assert _seeded_hash(7) == _seeded_hash(7)

    def test_different_final_states_hash_differently(self):
        # (Different *seeds* hash identically here — the task queue
        # draws no randomness — so vary the workload itself.)
        bigger = run_task_queue(
            TaskQueueConfig(system="gwc", n_nodes=3, total_tasks=25, seed=0)
        )
        assert _seeded_hash(0) != bigger.extra["state_hash"]


class TestExecutorConfig:
    def test_serial_when_jobs_one(self):
        assert SweepExecutor(jobs=1).map(len, ["ab", "c"]) == [2, 1]

    def test_empty_items(self):
        assert SweepExecutor(jobs=4).map(len, []) == []

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert default_jobs() == 3
        # The executor itself clamps to the CPUs actually available.
        assert SweepExecutor().jobs == min(3, _CPUS)

    def test_env_var_absent_means_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert default_jobs() == 1

    def test_env_var_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ExperimentError, match="REPRO_JOBS"):
            default_jobs()

    def test_explicit_jobs_overrides_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "8")
        assert SweepExecutor(jobs=2).jobs == min(2, _CPUS)

    def test_oversubscription_clamped_with_notice(self, capsys):
        executor = SweepExecutor(jobs=_CPUS + 7)
        assert executor.jobs == _CPUS
        err = capsys.readouterr().err
        assert "[sweep]" in err and f"{_CPUS + 7} jobs" in err

    def test_within_cpu_budget_is_silent(self, capsys):
        assert SweepExecutor(jobs=1).jobs == 1
        assert capsys.readouterr().err == ""


class TestShardsConfig:
    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "4")
        assert default_shards() == 4

    def test_env_var_absent_means_serial(self, monkeypatch):
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        assert default_shards() == 1

    def test_env_var_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "many")
        with pytest.raises(ExperimentError, match="REPRO_SHARDS"):
            default_shards()
