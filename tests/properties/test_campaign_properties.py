"""Hypothesis properties of the campaign plan generator and minimizer.

The generator's contract (docs/FAULTS.md §5): deterministic per
``(seed, n_nodes, horizon, profile)``, always ``validate``-clean for its
node count, every fault inside the horizon, and survivable by design —
the root never plain-crashes, partitions are bounded proper minorities,
and crash/restart pairs balance.  The ddmin property: for any planted
failing core, the result is exactly that core and is 1-minimal.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.campaign import PROFILES, ddmin, generate_plan, recovery_unit
from repro.faults.plan import CRASH, PARTITION, RESTART, FaultPlan, crash

UNIT = recovery_unit(6)

seeds = st.integers(min_value=0, max_value=10_000)
profiles = st.sampled_from(PROFILES)
node_counts = st.integers(min_value=3, max_value=10)


@settings(max_examples=60, deadline=None)
@given(seed=seeds, profile=profiles, n_nodes=node_counts)
def test_generation_is_deterministic(seed, profile, n_nodes):
    horizon = 400.0 * UNIT
    first = generate_plan(seed, n_nodes, horizon, profile)
    again = generate_plan(seed, n_nodes, horizon, profile)
    assert first.events == again.events
    assert first.seed == again.seed == seed


@settings(max_examples=60, deadline=None)
@given(seed=seeds, profile=profiles, n_nodes=node_counts)
def test_generated_plans_validate_and_stay_in_horizon(seed, profile, n_nodes):
    horizon = 400.0 * recovery_unit(n_nodes)
    plan = generate_plan(seed, n_nodes, horizon, profile)
    plan.validate(n_nodes)  # must not raise
    assert plan.events
    for event in plan.events:
        assert 0.0 <= event.time <= horizon
        if event.until is not None:
            assert event.time < event.until <= horizon


@settings(max_examples=60, deadline=None)
@given(seed=seeds, profile=profiles, n_nodes=node_counts)
def test_generated_plans_are_survivable_by_design(seed, profile, n_nodes):
    plan = generate_plan(seed, n_nodes, 400.0 * UNIT, profile)
    crashes = [e.node for e in plan.events if e.kind == CRASH and e.node is not None]
    restarts = [e.node for e in plan.events if e.kind == RESTART]
    # Plain crashes spare the root and are balanced by restarts.
    assert 0 not in crashes
    assert sorted(crashes) == sorted(restarts)
    for event in plan.events:
        if event.kind == PARTITION:
            assert 0 not in event.nodes
            assert len(event.nodes) <= max(1, (n_nodes - 1) // 2)
            assert event.until is not None


@settings(max_examples=40, deadline=None)
@given(seed=seeds, profile=profiles, n_nodes=node_counts)
def test_payload_round_trip_is_exact(seed, profile, n_nodes):
    plan = generate_plan(seed, n_nodes, 400.0 * UNIT, profile)
    rebuilt = FaultPlan.from_payload(json.loads(json.dumps(plan.to_payload())))
    assert rebuilt.events == plan.events
    assert rebuilt.seed == plan.seed


@settings(max_examples=60, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=12),
    data=st.data(),
)
def test_ddmin_finds_the_planted_core_and_is_one_minimal(size, data):
    events = tuple(crash(float(i + 1), node=1) for i in range(size))
    core_indices = data.draw(
        st.sets(
            st.integers(min_value=0, max_value=size - 1),
            min_size=0,
            max_size=size,
        )
    )
    core = {events[i] for i in core_indices}

    def fails(candidate):
        return core <= set(candidate)

    result = ddmin(events, fails)
    assert set(result) == core
    assert fails(result)
    for i in range(len(result)):
        assert not fails(result[:i] + result[i + 1:])
