"""Property-based tests: topology distances form a metric and spanning
trees preserve root distances."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.spanning_tree import build_bfs_tree
from repro.net.topology import MeshTorus, Ring, make_topology

sizes = st.integers(min_value=1, max_value=40)
kinds = st.sampled_from(["mesh_torus", "ring", "star", "fully_connected"])


class TestMetricProperties:
    @settings(max_examples=60)
    @given(kinds, sizes, st.data())
    def test_distance_is_a_metric(self, kind, n, data):
        topo = make_topology(kind, n)
        node = st.integers(min_value=0, max_value=n - 1)
        a, b, c = data.draw(node), data.draw(node), data.draw(node)
        assert topo.hops(a, a) == 0
        assert topo.hops(a, b) == topo.hops(b, a)
        assert topo.hops(a, b) >= (1 if a != b else 0)
        assert topo.hops(a, c) <= topo.hops(a, b) + topo.hops(b, c)

    @settings(max_examples=40)
    @given(sizes, st.data())
    def test_mesh_neighbors_consistent_with_distance(self, n, data):
        topo = MeshTorus(n)
        node = data.draw(st.integers(min_value=0, max_value=n - 1))
        for other in topo.neighbors(node):
            assert topo.hops(node, other) == 1

    @settings(max_examples=40)
    @given(st.integers(min_value=2, max_value=60), st.data())
    def test_ring_distance_bounded_by_half(self, n, data):
        ring = Ring(n)
        a = data.draw(st.integers(min_value=0, max_value=n - 1))
        b = data.draw(st.integers(min_value=0, max_value=n - 1))
        assert ring.hops(a, b) <= n // 2


class TestSpanningTreeProperties:
    @settings(max_examples=50)
    @given(kinds, st.integers(min_value=1, max_value=30), st.data())
    def test_tree_distance_equals_metric_distance(self, kind, n, data):
        topo = make_topology(kind, n)
        root = data.draw(st.integers(min_value=0, max_value=n - 1))
        members = data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1)
        )
        members.add(root)
        tree = build_bfs_tree(topo, root, tuple(sorted(members)))
        tree.validate(topo)
        for member in members:
            assert tree.depth_hops[member] == topo.hops(root, member)

    @settings(max_examples=50)
    @given(st.integers(min_value=2, max_value=30), st.data())
    def test_every_member_reaches_root(self, n, data):
        topo = MeshTorus(n)
        root = data.draw(st.integers(min_value=0, max_value=n - 1))
        tree = build_bfs_tree(topo, root, tuple(range(n)))
        for member in range(n):
            path = tree.path_to_root(member)
            assert path[-1] == root
            assert len(set(path)) == len(path)  # no repeats
