"""Property-based tests for protocol components: the lock manager, the
usage history, FIFO channels, and rollback snapshots."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locks.gwc_lock import GwcLockManager
from repro.locks.history import UsageHistory
from repro.memory.store import LocalStore
from repro.memory.varspace import FREE_VALUE, LockDecl, grant_value, request_value
from repro.net.message import Message
from repro.net.network import Network
from repro.net.topology import Ring
from repro.params import MachineParams
from repro.sim.kernel import Simulator


class TestLockManagerProperties:
    @settings(max_examples=60)
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=40))
    def test_fifo_service_and_single_holder(self, requesters):
        """Whatever the request order: grants follow FIFO among distinct
        requesters, with at most one holder at a time."""
        mgr = GwcLockManager(LockDecl(name="L", group="g"))
        pending: list[int] = []
        granted: list[int] = []

        def drain(outputs):
            for value in outputs:
                if value == FREE_VALUE:
                    continue
                holder = value - 1
                granted.append(holder)

        for node in requesters:
            if node == mgr.holder or node in mgr.queue:
                continue  # a real node never double-requests
            pending.append(node)
            drain(mgr.on_write(node, request_value(node)))
            # Release with 50% duty: release whenever queue grows past 2.
            while mgr.holder is not None and len(mgr.queue) > 2:
                drain(mgr.on_write(mgr.holder, FREE_VALUE))
        while mgr.holder is not None:
            drain(mgr.on_write(mgr.holder, FREE_VALUE))
        assert granted == [n for n in pending]

    @settings(max_examples=60)
    @given(st.lists(st.booleans(), max_size=200))
    def test_history_bounded_and_monotone_response(self, samples):
        hist = UsageHistory()
        for busy in samples:
            hist.update(1.0 if busy else 0.0)
            assert 0.0 <= hist.value <= 1.0

    @settings(max_examples=40)
    @given(
        st.floats(min_value=0.5, max_value=0.99),
        st.integers(min_value=1, max_value=100),
    )
    def test_history_converges_to_sample(self, decay, n):
        hist = UsageHistory(decay=decay)
        for _ in range(n):
            hist.observe_busy()
        expected = 1.0 - decay**n
        assert abs(hist.value - expected) < 1e-9


class TestFifoChannelProperties:
    @settings(max_examples=40)
    @given(
        st.lists(st.integers(min_value=1, max_value=200_000), min_size=1, max_size=40)
    )
    def test_arbitrary_size_mixes_never_reorder(self, sizes):
        sim = Simulator()
        net = Network(sim, Ring(3), MachineParams())
        got: list[int] = []
        net.attach(1, lambda msg: got.append(msg.payload))
        for i, size in enumerate(sizes):
            net.send(Message(src=0, dst=1, kind="k", payload=i, size_bytes=size))
        sim.run()
        assert got == list(range(len(sizes)))

    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=10e-6),
                st.integers(min_value=1, max_value=100_000),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_fifo_holds_with_staggered_send_times(self, sends):
        sim = Simulator()
        net = Network(sim, Ring(3), MachineParams())
        got: list[int] = []
        net.attach(2, lambda msg: got.append(msg.payload))
        sends = sorted(sends, key=lambda s: s[0])
        for i, (when, size) in enumerate(sends):
            sim.at(
                when,
                lambda i=i, size=size: net.send(
                    Message(src=0, dst=2, kind="k", payload=i, size_bytes=size)
                ),
            )
        sim.run()
        assert got == list(range(len(sends)))


class TestSnapshotProperties:
    @settings(max_examples=60)
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.integers(),
            min_size=1,
            max_size=10,
        ),
        st.data(),
    )
    def test_snapshot_restore_is_exact_inverse(self, values, data):
        store = LocalStore(0)
        for name, value in values.items():
            store.declare(name, value)
        names = tuple(values)
        saved = store.snapshot(names)
        # Arbitrary overwrites...
        for name in names:
            store.write(name, data.draw(st.integers()))
        store.restore(saved)
        for name, value in values.items():
            assert store.read(name) == value
