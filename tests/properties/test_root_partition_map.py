"""Property-based tests: the root partition map is a deterministic,
exactly-once, churn-stable assignment, and relay trees are bounded-degree
spanning trees.

These are the sharded-root analogue of the topology metric properties:
the partition map is the ownership "metric" every root consults, so its
invariants (same seed -> same assignment, every unit owned exactly once,
member churn moves nothing) are load-bearing for serial/sharded parity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_, TopologyError
from repro.memory.varspace import RootPartitionMap
from repro.net.spanning_tree import build_relay_tree
from repro.net.topology import make_topology

names = st.text(
    alphabet="abcdefghij_0123456789", min_size=1, max_size=12
)
partition_counts = st.integers(min_value=1, max_value=9)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _register_all(
    pmap: RootPartitionMap,
    variables: list[str],
    locks: dict[str, tuple[str, ...]],
) -> None:
    for lock, protected in locks.items():
        pmap.register(lock)
        for var in protected:
            pmap.register(var, mutex_lock=lock)
    for var in variables:
        pmap.register(var)


class TestPartitionMapProperties:
    @settings(max_examples=80)
    @given(names, partition_counts, seeds, st.lists(names, max_size=12))
    def test_deterministic_under_seed(self, group, n, seed, units):
        """Two maps built from the same (group, n, seed) agree everywhere;
        the assignment is a pure function of those inputs."""
        a = RootPartitionMap(group, n, seed=seed)
        b = RootPartitionMap(group, n, seed=seed)
        for unit in units:
            assert a.partition_of_unit(unit) == b.partition_of_unit(unit)
            assert a.hash_partition(unit) == b.hash_partition(unit)

    @settings(max_examples=80)
    @given(
        names,
        partition_counts,
        seeds,
        st.lists(names, unique=True, max_size=18),
        st.data(),
    )
    def test_exactly_once_coverage(self, group, n, seed, pool, data):
        """Every registered name lands on exactly one in-range partition,
        and a lock's whole unit (the lock plus every variable it
        protects) lands on the same partition."""
        # Carve the unique name pool into disjoint locks / protected
        # vars / standalone vars, as declare_lock would enforce.
        n_locks = data.draw(
            st.integers(min_value=0, max_value=min(4, len(pool)))
        )
        lock_names, rest = pool[:n_locks], pool[n_locks:]
        locks: dict[str, tuple[str, ...]] = {}
        for lock in lock_names:
            take = data.draw(
                st.integers(min_value=0, max_value=min(3, len(rest)))
            )
            locks[lock] = tuple(rest[:take])
            rest = rest[take:]
        variables = rest
        pmap = RootPartitionMap(group, n, seed=seed)
        _register_all(pmap, variables, locks)
        assignment = pmap.assignment()
        for name, part in assignment.items():
            assert 0 <= part < n
            # Single owner: asking twice gives the same answer.
            assert pmap.partition_of(name) == part
        for lock, protected in locks.items():
            home = pmap.partition_of(lock)
            for var in protected:
                assert pmap.partition_of(var) == home

    @settings(max_examples=60)
    @given(
        names,
        partition_counts,
        seeds,
        st.lists(names, unique=True, min_size=1, max_size=10),
        st.lists(names, unique=True, max_size=6),
    )
    def test_stable_under_registration_churn(
        self, group, n, seed, first, later
    ):
        """Registering more names (new members declaring new variables)
        never moves an already-assigned unit: the hash looks only at
        (seed, group, unit), never at the current population."""
        pmap = RootPartitionMap(group, n, seed=seed)
        _register_all(pmap, first, {})
        before = {name: pmap.partition_of(name) for name in first}
        _register_all(pmap, later, {})
        for name in first:
            assert pmap.partition_of(name) == before[name]

    @settings(max_examples=60)
    @given(names, st.integers(min_value=2, max_value=8), seeds, names)
    def test_override_moves_exactly_one_unit(self, group, n, seed, unit):
        """An online re-partitioning override moves its unit and nothing
        else, and pointing the unit back home clears the override."""
        pmap = RootPartitionMap(group, n, seed=seed)
        others = [f"{unit}__sib{i}" for i in range(4)]
        _register_all(pmap, [unit, *others], {})
        before = pmap.assignment()
        home = pmap.hash_partition(unit)
        target = (home + 1) % n
        pmap.set_override(unit, target)
        assert pmap.partition_of(unit) == target
        for other in others:
            assert pmap.partition_of(other) == before[other]
        pmap.set_override(unit, home)
        assert pmap.overrides == {}
        assert pmap.assignment() == before

    def test_rejects_bad_shapes(self):
        with pytest.raises(MemoryError_):
            RootPartitionMap("g", 0)
        pmap = RootPartitionMap("g", 2)
        with pytest.raises(MemoryError_):
            pmap.set_override("u", 2)
        with pytest.raises(MemoryError_):
            pmap.set_override("u", -1)


topologies = st.sampled_from(["mesh_torus", "ring", "star", "fully_connected"])


class TestRelayTreeProperties:
    @settings(max_examples=60)
    @given(
        topologies,
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=6),
        st.data(),
    )
    def test_relay_tree_spans_with_bounded_fanout(
        self, kind, n, fanout, data
    ):
        """The relay tree reaches every member exactly once and no node
        forwards to more than ``fanout`` children."""
        topo = make_topology(kind, n)
        root = data.draw(st.integers(min_value=0, max_value=n - 1))
        members = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                unique=True,
                max_size=n,
            )
        )
        tree = build_relay_tree(topo, root, tuple(members), fanout)
        expected = set(members) | {root}
        seen = set()
        for node in expected:
            # Walking parents from any member terminates at the root —
            # the tree is connected and acyclic.
            hops = 0
            cur = node
            while cur != root:
                cur = tree.parent[cur]
                hops += 1
                assert hops <= len(expected)
            seen.add(node)
        assert seen == expected
        for node, kids in tree.children.items():
            assert len(kids) <= fanout
            for kid in kids:
                assert tree.parent[kid] == node

    @settings(max_examples=40)
    @given(
        topologies,
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=1, max_value=5),
        st.data(),
    )
    def test_relay_tree_deterministic(self, kind, n, fanout, data):
        topo = make_topology(kind, n)
        root = data.draw(st.integers(min_value=0, max_value=n - 1))
        members = tuple(range(n))
        a = build_relay_tree(topo, root, members, fanout)
        b = build_relay_tree(topo, root, members, fanout)
        assert a.parent == b.parent
        assert a.children == b.children

    def test_relay_tree_rejects_bad_fanout(self):
        topo = make_topology("ring", 4)
        with pytest.raises(TopologyError):
            build_relay_tree(topo, 0, (1, 2, 3), 0)
