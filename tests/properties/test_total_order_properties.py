"""Property tests: GWC total store order holds under arbitrary traffic.

The :class:`OrderProbe` oracle verifies the paper's defining guarantee —
identical apply order on every member — across randomized writer mixes,
contention patterns, and even lossy fabrics with recovery.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.base import make_system
from repro.consistency.order_probe import OrderProbe
from repro.core.machine import DSMMachine
from repro.core.section import Section

SLOW = settings(max_examples=15, deadline=None)


def build_machine(n_nodes, loss_rate=0.0, seed=0):
    machine = DSMMachine(n_nodes=n_nodes, loss_rate=loss_rate, seed=seed)
    machine.create_group("g")
    machine.declare_variable("g", "x", 0)
    machine.declare_variable("g", "y", 0)
    machine.declare_variable("g", "m", 0, mutex_lock="L")
    machine.declare_lock("g", "L", protects=("m",))
    return machine


class TestTotalOrderProperty:
    @SLOW
    @given(
        n_nodes=st.integers(min_value=2, max_value=8),
        writers=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.sampled_from(["x", "y"]),
                st.integers(min_value=1, max_value=6),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    def test_plain_writers_always_totally_ordered(self, n_nodes, writers):
        machine = build_machine(n_nodes)
        probe = OrderProbe(machine, "g")

        def writer(node, var, count):
            for i in range(count):
                node.iface.share_write(var, (node.id, i))
                yield 0.3e-6

        for node_idx, var, count in writers:
            node = machine.nodes[node_idx % n_nodes]
            machine.spawn(writer(node, var, count), name=f"w{len(probe.applied)}")
        machine.run()
        probe.verify()
        assert probe.max_lag() == 0  # everything drained

    @SLOW
    @given(
        seed=st.integers(min_value=0, max_value=500),
        n_nodes=st.integers(min_value=3, max_value=6),
    )
    def test_optimistic_sections_preserve_total_order(self, seed, n_nodes):
        machine = build_machine(n_nodes, seed=seed)
        probe = OrderProbe(machine, "g")
        system = make_system("gwc_optimistic", machine)

        def body(ctx):
            value = ctx.read("m")
            yield from ctx.compute(0.5e-6)
            if ctx.aborted:
                return
            ctx.write("m", value + 1)

        section = Section(
            lock="L", body=body, shared_reads=("m",), shared_writes=("m",)
        )

        def worker(node):
            rng = node.sim.rng.stream(f"order.{node.id}")
            for _ in range(4):
                yield rng.uniform(0, 5e-6)
                yield from system.run_section(node, section)

        for node in machine.nodes:
            machine.spawn(worker(node), name=f"w{node.id}")
        machine.run()
        probe.verify()
        assert all(n.store.read("m") == 4 * n_nodes for n in machine.nodes)

    @SLOW
    @given(
        loss_rate=st.floats(min_value=0.01, max_value=0.25),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_total_order_survives_loss_recovery(self, loss_rate, seed):
        machine = build_machine(5, loss_rate=loss_rate, seed=seed)
        probe = OrderProbe(machine, "g")

        def writer(node, count):
            for i in range(count):
                node.iface.share_write("x", (node.id, i))
                yield 0.5e-6

        for node in machine.nodes[1:4]:
            machine.spawn(writer(node, 5), name=f"w{node.id}")
        machine.run(max_events=2_000_000)
        probe.verify()
        # Recovery must eventually deliver everything everywhere.
        assert probe.max_lag() == 0
