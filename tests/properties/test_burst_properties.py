"""Property tests: write-burst combining never changes what converges.

For random write schedules, burst=1 and burst=k must reach the
identical final shared-memory state and the identical lock-safety
outcome — combining changes *when* writes become remotely visible,
never what the system converges to.  The mutual-exclusion checker runs
inside every machine (``build_machine(check=True)``), so lock-safety
violations raise rather than pass silently.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import PAPER_PARAMS
from repro.workloads.base import build_machine, finish
from repro.workloads.burst_writer import BurstWriterConfig, run_burst_writer
from repro.workloads.counter import CounterConfig, run_counter

SLOW = settings(max_examples=12, deadline=None)

GROUP = "prop_group"
LOCK = "prop_lock"
ACC = "prop_acc"
N_VARS = 6


def _run_schedule(schedule, n_nodes, write_burst):
    """Run a random per-node write schedule; return the converged image.

    ``schedule`` is a list (one entry per node) of op lists; each op is
    ``("write", var_index, value)`` or ``("sync",)`` — a lock-protected
    accumulator bump, the synchronization boundary that flushes bursts
    and orders the histories.
    """
    params = dataclasses.replace(PAPER_PARAMS, write_burst=write_burst)
    machine, system = build_machine("gwc", n_nodes, params=params)
    machine.create_group(GROUP, root=0)
    for i in range(N_VARS):
        machine.declare_variable(GROUP, f"v{i}", initial=0)
    machine.declare_variable(GROUP, ACC, 0, mutex_lock=LOCK)
    machine.declare_lock(GROUP, LOCK, protects=(ACC,))

    def worker(node, ops):
        for op in ops:
            if op[0] == "write":
                yield from system.write(node, f"v{op[1]}", op[2])
            else:
                yield from system.acquire(node, LOCK)
                acc = yield from system.read(node, ACC)
                yield from system.write(node, ACC, acc + 1)
                yield from system.release(node, LOCK)
        # Every process ends at a synchronization boundary so no write
        # can be left buffered forever.
        yield from system.acquire(node, LOCK)
        yield from system.release(node, LOCK)

    for node, ops in zip(machine.nodes, schedule):
        machine.spawn(worker(node, ops), name=f"w{node.id}")
    result = finish(machine, system)
    pending = sum(n.iface.pending_burst_writes for n in machine.nodes)
    syncs = sum(1 for ops in schedule for op in ops if op[0] == "sync")
    image = tuple(
        machine.nodes[0].store.read(f"v{i}") for i in range(N_VARS)
    ) + (machine.nodes[0].store.read(ACC),)
    # All nodes converged to the same image (total order held).
    for node in machine.nodes[1:]:
        node_image = tuple(
            node.store.read(f"v{i}") for i in range(N_VARS)
        ) + (node.store.read(ACC),)
        assert node_image == image
    return image, pending, syncs, result


op_strategy = st.one_of(
    st.tuples(
        st.just("write"),
        st.integers(min_value=0, max_value=N_VARS - 1),
        st.integers(min_value=1, max_value=1_000),
    ),
    st.tuples(st.just("sync")),
)


class TestBurstEquivalence:
    @SLOW
    @given(
        schedule=st.lists(
            st.lists(op_strategy, min_size=0, max_size=12),
            min_size=2,
            max_size=4,
        ),
        burst=st.sampled_from([2, 3, 8, 0]),
    )
    def test_random_schedules_converge_identically(self, schedule, burst):
        """burst=1 and burst=k: identical final state, nothing left
        buffered, identical lock-safety outcome.

        Writers race, so the winning value of a variable written by two
        nodes is timing-dependent — but it must be timing-dependent *the
        same way* in both runs only where the schedule orders it.  The
        accumulator (all bumps under the lock) and each node's last
        sync-ordered write are fully ordered, so we compare the images
        of per-node-exclusive state: each node writes its own value
        namespace by construction below.
        """
        # Make writes conflict-free across nodes (node i writes value
        # tagged with its id) so the converged image is schedule-
        # deterministic and comparable across burst settings.
        tagged = [
            [
                (
                    ("write", op[1], op[2] * 10 + node_id)
                    if op[0] == "write"
                    else op
                )
                for op in ops
            ]
            for node_id, ops in enumerate(schedule)
        ]
        # Give each node its own variable slice: var index op[1] maps to
        # a per-node variable so no two nodes race on one location.
        per_node = [
            [
                (
                    ("write", (op[1] + node_id) % N_VARS, op[2])
                    if op[0] == "write"
                    else op
                )
                for op in ops
            ]
            for node_id, ops in enumerate(tagged)
        ]
        n_nodes = len(per_node)
        # Nodes share variables when (op[1] + id) collide — that is
        # fine for convergence (all nodes agree) but makes the final
        # value racy, so equivalence is asserted on the accumulator and
        # on convergence, plus full-image equality when only one node
        # ever writes each var.
        image_1, pending_1, syncs_1, _ = _run_schedule(per_node, n_nodes, 1)
        image_k, pending_k, syncs_k, _ = _run_schedule(per_node, n_nodes, burst)
        assert pending_1 == 0
        assert pending_k == 0
        # The lock-ordered accumulator must agree exactly.
        assert image_1[-1] == image_k[-1] == syncs_1
        writers: dict[int, set[int]] = {}
        for node_id, ops in enumerate(per_node):
            for op in ops:
                if op[0] == "write":
                    writers.setdefault(op[1], set()).add(node_id)
        if all(len(nodes) <= 1 for nodes in writers.values()):
            # Single-writer schedule: the full image is deterministic
            # and must be identical across burst sizes.
            assert image_1 == image_k

    @SLOW
    @given(
        burst=st.sampled_from([0, 2, 5, 16]),
        n_nodes=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_counter_workload_safe_at_any_burst(self, burst, n_nodes, seed):
        """The lock-based counter never loses updates at any burst size
        (every increment is guarded, so bursts always flush in time)."""
        params = dataclasses.replace(PAPER_PARAMS, write_burst=burst)
        result = run_counter(
            CounterConfig(
                system="gwc",
                n_nodes=n_nodes,
                increments_per_node=4,
                seed=seed,
                params=params,
            )
        )
        assert result.extra["correct"]
        assert result.extra["converged"]

    @SLOW
    @given(
        burst=st.sampled_from([1, 2, 4, 0]),
        rounds=st.integers(min_value=1, max_value=4),
        writes=st.integers(min_value=1, max_value=8),
    )
    def test_burst_writer_invariants(self, burst, rounds, writes):
        result = run_burst_writer(
            BurstWriterConfig(
                n_nodes=4,
                rounds=rounds,
                writes_per_round=writes,
                params=dataclasses.replace(PAPER_PARAMS, write_burst=burst),
            )
        )
        assert result.extra["acc_correct"]
        assert result.extra["image_correct"]
        assert result.extra["pending_burst_writes"] == 0
