"""Property tests for the application-level building blocks."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.machine import DSMMachine
from repro.locks.barrier import CentralBarrier
from repro.locks.rmw import RemoteAtomics
from repro.workloads.stencil import StencilConfig, run_stencil

SLOW = settings(max_examples=10, deadline=None)


class TestStencilProperties:
    @SLOW
    @given(
        n_nodes=st.sampled_from([1, 2, 3, 4, 6]),
        cells=st.integers(min_value=2, max_value=8),
        iterations=st.integers(min_value=1, max_value=8),
    )
    def test_distribution_never_changes_the_answer(
        self, n_nodes, cells, iterations
    ):
        config = StencilConfig(
            n_nodes=n_nodes, cells_per_node=cells, iterations=iterations
        )
        result = run_stencil(config)
        assert result.extra["correct"], result.extra["max_error"]

    @SLOW
    @given(iterations=st.integers(min_value=1, max_value=12))
    def test_mean_is_conserved_under_relaxation(self, iterations):
        """Averaging with reflective boundaries conserves the mean."""
        config = StencilConfig(n_nodes=4, cells_per_node=4, iterations=iterations)
        result = run_stencil(config)
        values = result.extra["computed"]
        initial_mean = sum(range(16)) / 16.0
        assert abs(sum(values) / len(values) - initial_mean) < 1e-9


class TestBarrierProperties:
    @SLOW
    @given(
        n_nodes=st.integers(min_value=2, max_value=8),
        episodes=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_episode_isolation(self, n_nodes, episodes, seed):
        """No node ever enters episode k+1 before every node left
        episode k, for any arrival jitter."""
        machine = DSMMachine(n_nodes=n_nodes, seed=seed)
        machine.create_group("g", root=0)
        atomics = RemoteAtomics(machine)
        barrier = CentralBarrier("b", "g", machine, atomics)
        passes: list[tuple[int, int, float]] = []

        def worker(node):
            rng = node.sim.rng.stream(f"bp{node.id}")
            for episode in range(episodes):
                yield rng.uniform(0, 4e-6)
                yield from barrier.wait(node)
                passes.append((episode, node.id, node.sim.now))

        for node in machine.nodes:
            machine.spawn(worker(node), name=f"w{node.id}")
        machine.run()
        assert len(passes) == n_nodes * episodes
        by_episode: dict[int, list[float]] = {}
        for episode, _node, t in passes:
            by_episode.setdefault(episode, []).append(t)
        for episode in range(episodes - 1):
            # The *releasing* write of episode k+1 cannot precede every
            # pass of episode k: last pass of k <= first pass of k+1
            # plus the release propagation slack.
            assert min(by_episode[episode + 1]) >= min(by_episode[episode])
