"""End-to-end property tests: whole-system invariants must hold for
arbitrary seeds, sizes, and contention parameters."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.counter import CounterConfig, run_counter
from repro.workloads.pipeline import PipelineConfig, run_pipeline
from repro.workloads.synthetic import SyntheticConfig, run_synthetic

SLOW = settings(max_examples=12, deadline=None)


class TestCounterInvariants:
    @SLOW
    @given(
        system=st.sampled_from(["gwc", "gwc_optimistic", "release"]),
        n_nodes=st.integers(min_value=1, max_value=7),
        increments=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_no_lost_updates_ever(self, system, n_nodes, increments, seed):
        result = run_counter(
            CounterConfig(
                system=system,
                n_nodes=n_nodes,
                increments_per_node=increments,
                seed=seed,
            )
        )
        assert result.extra["correct"]
        assert result.extra["converged"]

    @SLOW
    @given(
        threshold=st.floats(min_value=0.0, max_value=1.0),
        think=st.floats(min_value=0.5e-6, max_value=40e-6),
    )
    def test_any_threshold_is_safe(self, threshold, think):
        """The optimism threshold is a performance knob, never a
        correctness knob."""
        result = run_counter(
            CounterConfig(
                system="gwc_optimistic",
                n_nodes=5,
                increments_per_node=5,
                think_time=think,
                threshold=threshold,
            )
        )
        assert result.extra["correct"]


class TestSyntheticInvariants:
    @SLOW
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_nodes=st.integers(min_value=2, max_value=6),
    )
    def test_random_interleavings_serialize(self, seed, n_nodes):
        result = run_synthetic(
            SyntheticConfig(
                system="gwc_optimistic",
                n_nodes=n_nodes,
                sections_per_node=6,
                seed=seed,
            )
        )
        assert result.extra["correct"]
        assert result.extra["converged"]


class TestPipelineInvariants:
    @SLOW
    @given(
        system=st.sampled_from(["gwc", "gwc_optimistic"]),
        n_nodes=st.sampled_from([1, 2, 4, 8]),
        blocks=st.integers(min_value=1, max_value=4),
    )
    def test_accumulator_always_exact(self, system, n_nodes, blocks):
        data_size = n_nodes * blocks
        result = run_pipeline(
            PipelineConfig(system=system, n_nodes=n_nodes, data_size=data_size)
        )
        assert result.extra["acc_correct"]

    @SLOW
    @given(n_nodes=st.sampled_from([2, 4, 8]))
    def test_power_never_exceeds_ideal(self, n_nodes):
        result = run_pipeline(
            PipelineConfig(
                system="gwc_optimistic", n_nodes=n_nodes, data_size=n_nodes * 8
            )
        )
        assert result.speedup <= result.extra["ideal_power"] + 1e-9
