"""Stateful model checking of the GWC lock manager.

Hypothesis drives random request/release sequences against
:class:`GwcLockManager` while a trivially correct reference model
(one holder slot + a FIFO list) runs alongside; after every step the
implementation must agree with the model exactly, and every multicast
the manager emits must be consistent with the model's transition.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.locks.gwc_lock import GwcLockManager
from repro.memory.varspace import FREE_VALUE, LockDecl, grant_value, request_value

NODES = list(range(6))


class LockManagerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.manager = GwcLockManager(LockDecl(name="L", group="g"))
        # Reference model.
        self.holder: int | None = None
        self.queue: list[int] = []

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def _eligible_requesters(self):
        busy = set(self.queue)
        if self.holder is not None:
            busy.add(self.holder)
        return [n for n in NODES if n not in busy]

    @precondition(lambda self: self._eligible_requesters())
    @rule(data=st.data())
    def request(self, data):
        node = data.draw(st.sampled_from(self._eligible_requesters()))
        out = self.manager.on_write(node, request_value(node))
        if self.holder is None:
            # Model: immediate grant.
            self.holder = node
            assert out == [grant_value(node)]
        else:
            self.queue.append(node)
            assert out == []

    @precondition(lambda self: self.holder is not None)
    @rule()
    def release(self):
        node = self.holder
        out = self.manager.on_write(node, FREE_VALUE)
        if self.queue:
            self.holder = self.queue.pop(0)
            assert out == [grant_value(self.holder)]
        else:
            self.holder = None
            assert out == [FREE_VALUE]

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def implementation_matches_model(self):
        assert self.manager.holder == self.holder
        assert self.manager.queue == self.queue

    @invariant()
    def holder_never_queued(self):
        if self.manager.holder is not None:
            assert self.manager.holder not in self.manager.queue

    @invariant()
    def queue_has_no_duplicates(self):
        assert len(set(self.manager.queue)) == len(self.manager.queue)


LockManagerMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestLockManagerStateful = LockManagerMachine.TestCase
