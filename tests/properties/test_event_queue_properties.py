"""Property-based tests for the event queue and simulator ordering."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.event import EventQueue
from repro.sim.kernel import Simulator

times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
priorities = st.integers(min_value=-2, max_value=2)


class TestEventQueueProperties:
    @given(st.lists(st.tuples(times, priorities), max_size=200))
    def test_pop_order_is_total_and_stable(self, entries):
        """Events pop sorted by (time, priority), with insertion order
        breaking remaining ties."""
        queue = EventQueue()
        popped: list[tuple[float, int, int]] = []
        for i, (time, priority) in enumerate(entries):
            queue.push(time, lambda: None, priority)
        order = []
        while queue:
            event = queue.pop()
            order.append((event.time, event.priority, event.seq))
        assert order == sorted(order)
        assert len(order) == len(entries)

    @given(st.lists(times, min_size=1, max_size=100), st.data())
    def test_cancellation_removes_exactly_the_cancelled(self, ts, data):
        queue = EventQueue()
        events = [queue.push(t, lambda: None) for t in ts]
        to_cancel = data.draw(
            st.sets(st.integers(min_value=0, max_value=len(ts) - 1), max_size=len(ts))
        )
        for idx in to_cancel:
            events[idx].cancel()
            queue.note_cancelled()
        surviving = []
        while queue:
            surviving.append(queue.pop().seq)
        expected = [e.seq for i, e in enumerate(events) if i not in to_cancel]
        assert sorted(surviving) == sorted(expected)


class TestSimulatorProperties:
    @settings(max_examples=50)
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=50))
    def test_clock_is_monotone(self, delays):
        sim = Simulator()
        observed: list[float] = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)

    @settings(max_examples=30)
    @given(
        st.lists(
            st.lists(st.floats(min_value=0.01, max_value=10.0), max_size=10),
            min_size=1,
            max_size=8,
        )
    )
    def test_processes_accumulate_their_own_delays(self, all_delays):
        sim = Simulator()
        finished: dict[int, float] = {}

        def proc(i, delays):
            for d in delays:
                yield d
            finished[i] = sim.now

        for i, delays in enumerate(all_delays):
            sim.spawn(proc(i, delays), name=f"p{i}")
        sim.run()
        for i, delays in enumerate(all_delays):
            assert finished[i] == sum(delays) or abs(
                finished[i] - sum(delays)
            ) < 1e-9 * max(1.0, sum(delays))
