"""Unit tests for the consistency-system API surface used by workloads."""

from __future__ import annotations

import pytest

from repro.consistency.base import make_system
from repro.core.machine import DSMMachine
from repro.errors import LockStateError, WorkloadError
from repro.workloads.base import build_machine, finish


def build(system="gwc"):
    machine = DSMMachine(n_nodes=4)
    machine.create_group("g", root=0)
    machine.declare_variable("g", "x", 10)
    machine.declare_variable("g", "m", 0, mutex_lock="L")
    machine.declare_lock("g", "L", protects=("m",))
    return machine, make_system(system, machine)


class TestGwcSystemApi:
    def test_read_is_local_and_immediate(self):
        machine, system = build()
        got = []

        def proc(node):
            value = yield from system.read(node, "x")
            got.append((node.sim.now, value))

        machine.spawn(proc(machine.nodes[2]), name="p")
        machine.run()
        assert got == [(0.0, 10)]

    def test_write_propagates_to_all_members(self):
        machine, system = build()

        def proc(node):
            yield from system.write(node, "x", 99)

        machine.spawn(proc(machine.nodes[1]), name="p")
        machine.run()
        assert all(n.store.read("x") == 99 for n in machine.nodes)

    def test_wait_value_wakes_on_remote_write(self):
        machine, system = build()
        got = []

        def writer(node):
            yield 3e-6
            yield from system.write(node, "x", 5)

        def waiter(node):
            value = yield from system.wait_value(node, "x", lambda v: v == 5)
            got.append((node.sim.now, value))

        machine.spawn(writer(machine.nodes[1]), name="w")
        machine.spawn(waiter(machine.nodes[3]), name="r")
        machine.run()
        assert got[0][1] == 5
        assert got[0][0] > 3e-6

    def test_release_without_holding_rejected(self):
        machine, system = build()

        def proc(node):
            yield from system.release(node, "L")

        machine.spawn(proc(machine.nodes[1]), name="p")
        with pytest.raises(LockStateError):
            machine.run()

    def test_acquire_release_cycle(self):
        machine, system = build()
        held = []

        def proc(node):
            yield from system.acquire(node, "L")
            held.append(node.id)
            yield from system.release(node, "L")

        machine.spawn(proc(machine.nodes[3]), name="p")
        machine.run()
        assert held == [3]


class TestWorkloadBase:
    def test_build_machine_validates_node_count(self):
        with pytest.raises(WorkloadError):
            build_machine("gwc", 0)

    def test_build_machine_attaches_checker_by_default(self):
        machine, system = build_machine("gwc", 2)
        assert machine.checker is not None

    def test_build_machine_without_checker(self):
        machine, system = build_machine("gwc", 2, check=False)
        assert machine.checker is None

    def test_finish_packages_result(self):
        machine, system = build_machine("gwc", 2)

        def proc():
            yield 1e-6

        machine.spawn(proc(), name="p")
        result = finish(machine, system, tag="value")
        assert result.system == "gwc"
        assert result.n_nodes == 2
        assert result.elapsed == pytest.approx(1e-6)
        assert result.extra["tag"] == "value"

    def test_system_kwargs_forwarded(self):
        machine, system = build_machine("gwc_optimistic", 2, threshold=0.9)
        assert system.config.threshold == 0.9


class TestScales:
    def test_sweep_scale_env(self, monkeypatch):
        from repro.experiments.common import (
            SCALE_FULL,
            SCALE_QUICK,
            network_sizes_fig2,
            sweep_scale,
        )

        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert sweep_scale() == SCALE_QUICK
        monkeypatch.setenv("REPRO_FULL", "1")
        assert sweep_scale() == SCALE_FULL
        assert network_sizes_fig2(SCALE_FULL)[-1] == 129
        monkeypatch.setenv("REPRO_FULL", "0")
        assert sweep_scale() == SCALE_QUICK

    def test_quick_sizes_subset_of_full(self):
        from repro.experiments.common import (
            SCALE_FULL,
            SCALE_QUICK,
            network_sizes_fig2,
            network_sizes_fig8,
        )

        assert set(network_sizes_fig2(SCALE_QUICK)) <= set(
            network_sizes_fig2(SCALE_FULL)
        )
        assert set(network_sizes_fig8(SCALE_QUICK)) <= set(
            network_sizes_fig8(SCALE_FULL)
        )


class TestCliGrouping:
    def test_grouping_command(self, capsys):
        from repro.cli import main

        assert main(["grouping", "--sizes", "8"]) == 0
        out = capsys.readouterr().out
        assert "global root" in out
