"""Unit tests for the eagersharing interface: sequencing, suspension,
interrupts, and the Figure 6 hardware blocking filter."""

from __future__ import annotations

import pytest

from repro.errors import SequencingError
from repro.memory.interface import ApplyPacket, NodeInterface
from repro.memory.packet_filter import HardwareBlockingFilter
from repro.memory.sharing_group import SharingGroup
from repro.memory.store import LocalStore
from repro.memory.varspace import LockDecl, VarDecl
from repro.net.network import Network
from repro.net.topology import Ring
from repro.params import MachineParams
from repro.sim.kernel import Simulator


def make_iface(node=1, echo_blocking=True):
    sim = Simulator()
    network = Network(sim, Ring(4), MachineParams())
    store = LocalStore(node)
    iface = NodeInterface(sim, network, node, store, echo_blocking=echo_blocking)
    network.attach(node, iface.on_message)
    for other in range(4):
        if other != node:
            network.attach(other, lambda msg: None)  # sink for forwards
    group = SharingGroup("g", network, (0, 1, 2, 3), root=0)
    group.declare_variable(VarDecl(name="x", group="g", initial=0))
    group.declare_variable(VarDecl(name="m", group="g", initial=0, mutex_lock="L"))
    group.declare_lock(LockDecl(name="L", group="g", protects=("m",)))
    iface.join_group(group)
    return sim, iface, store, group


def packet(seq, var="x", value=1, origin=0, mutex=False, lock=False):
    return ApplyPacket(
        group="g",
        seq=seq,
        var=var,
        value=value,
        origin=origin,
        is_mutex_data=mutex,
        is_lock=lock,
    )


class TestHardwareBlockingFilter:
    def test_drops_own_mutex_data_echo(self):
        filt = HardwareBlockingFilter(node=1)
        assert filt.should_drop(origin=1, is_mutex_data=True, is_lock=False)
        assert filt.dropped == 1

    def test_keeps_others_mutex_data(self):
        filt = HardwareBlockingFilter(node=1)
        assert not filt.should_drop(origin=2, is_mutex_data=True, is_lock=False)

    def test_keeps_own_ordinary_data(self):
        filt = HardwareBlockingFilter(node=1)
        assert not filt.should_drop(origin=1, is_mutex_data=False, is_lock=False)

    def test_never_drops_lock_values(self):
        """Echoed local lock changes are part of the mutex group but are
        not dropped (they drive the interrupt)."""
        filt = HardwareBlockingFilter(node=1)
        assert not filt.should_drop(origin=1, is_mutex_data=True, is_lock=True)

    def test_disabled_filter_drops_nothing(self):
        filt = HardwareBlockingFilter(node=1, enabled=False)
        assert not filt.should_drop(origin=1, is_mutex_data=True, is_lock=False)
        assert filt.dropped == 0


class TestSequencing:
    def test_in_order_applies(self):
        sim, iface, store, group = make_iface()
        iface._receive(packet(0, value=10))
        iface._receive(packet(1, value=20))
        assert store.read("x") == 20
        assert iface.applied_count == 2

    def test_out_of_order_buffers_until_gap_fills(self):
        sim, iface, store, group = make_iface()
        iface._receive(packet(1, value=20))
        assert store.read("x") == 0  # seq 0 still missing
        iface._receive(packet(0, value=10))
        assert store.read("x") == 20  # both applied, in order

    def test_duplicate_seq_rejected(self):
        sim, iface, store, group = make_iface()
        iface._receive(packet(0))
        with pytest.raises(SequencingError):
            iface._receive(packet(0))

    def test_echo_consumes_sequence_number(self):
        """A dropped echo must still advance the expected sequence."""
        sim, iface, store, group = make_iface(node=1)
        iface._receive(packet(0, var="m", value=99, origin=1, mutex=True))
        assert store.read("m") == 0  # dropped
        iface._receive(packet(1, var="x", value=7))
        assert store.read("x") == 7  # sequence advanced past the drop


class TestInsharingSuspension:
    def test_suspended_packets_queue_and_replay_in_order(self):
        sim, iface, store, group = make_iface()
        iface.suspend_insharing()
        iface._receive(packet(0, value=1))
        iface._receive(packet(1, value=2))
        assert store.read("x") == 0
        assert iface.pending_suspended == 2
        iface.resume_insharing()
        assert store.read("x") == 2
        assert iface.pending_suspended == 0

    def test_filter_applies_to_drained_packets(self):
        sim, iface, store, group = make_iface(node=1)
        iface.suspend_insharing()
        iface._receive(packet(0, var="m", value=5, origin=1, mutex=True))
        iface.resume_insharing()
        assert store.read("m") == 0
        assert iface.filter.dropped == 1


class TestLockInterrupt:
    def test_interrupt_fires_with_suspension_engaged(self):
        sim, iface, store, group = make_iface()
        seen = []

        def handler(value):
            seen.append((value, iface.insharing_suspended))
            iface.resume_insharing()

        iface.arm_lock_interrupt("L", handler)
        iface._receive(packet(0, var="L", value=3, origin=0, lock=True))
        assert seen == [(3, True)]
        assert store.read("L") == 3  # value applied before the handler
        assert not iface.insharing_suspended

    def test_interrupt_disarms_itself(self):
        sim, iface, store, group = make_iface()
        calls = []
        iface.arm_lock_interrupt("L", lambda v: (calls.append(v), iface.resume_insharing()))
        iface._receive(packet(0, var="L", value=1, origin=0, lock=True))
        iface._receive(packet(1, var="L", value=2, origin=0, lock=True))
        assert calls == [1]

    def test_drain_stops_at_armed_lock_change(self):
        """Resuming insharing replays queued packets but an armed lock
        change re-suspends and leaves the rest queued."""
        sim, iface, store, group = make_iface()
        order = []

        def handler(value):
            order.append(("interrupt", value))
            # Leave insharing suspended (the rollback path).

        iface.suspend_insharing()
        iface._receive(packet(0, var="x", value=1))
        iface._receive(packet(1, var="L", value=9, origin=0, lock=True))
        iface._receive(packet(2, var="x", value=2))
        iface.arm_lock_interrupt("L", handler)
        iface.resume_insharing()
        assert order == [("interrupt", 9)]
        assert store.read("x") == 1  # packet 2 still queued
        assert iface.pending_suspended == 1
        iface.resume_insharing()
        assert store.read("x") == 2

    def test_unarmed_lock_changes_do_not_suspend(self):
        sim, iface, store, group = make_iface()
        iface._receive(packet(0, var="L", value=4, origin=0, lock=True))
        assert not iface.insharing_suspended
        assert store.read("L") == 4


class TestOutbound:
    def test_share_write_applies_locally_and_forwards(self):
        sim, iface, store, group = make_iface(node=1)
        iface.share_write("x", 42)
        assert store.read("x") == 42
        assert iface.network.stats.by_kind["gwc.update"] == 1

    def test_atomic_exchange_returns_old_value(self):
        sim, iface, store, group = make_iface(node=1)
        store.write("x", 5)
        old = iface.atomic_exchange("x", 9)
        assert old == 5
        assert store.read("x") == 9

    def test_wire_size_includes_declared_payload(self):
        sim, iface, store, group = make_iface(node=1)
        assert group.wire_bytes("L", 16) == 16
        assert group.wire_bytes("x", 16) == 24  # 16 header + 8 payload
