"""Unit tests: per-file / per-field drift reports."""

import json

from repro.goldens.diff import MAX_DIFFS_PER_FILE, diff_artifacts


def _write(tmp_path, name, content):
    path = tmp_path / name
    path.write_text(content)
    return path


class TestJsonDiff:
    def test_identical_payloads_no_diff(self, tmp_path):
        a = _write(tmp_path, "a.json", '{"x": 1, "y": [1, 2]}')
        b = _write(tmp_path, "b.json", '{"y": [1, 2], "x": 1}')
        assert diff_artifacts(a, b) == []

    def test_field_level_report(self, tmp_path):
        a = _write(tmp_path, "a.json", json.dumps({"rows": [{"gwc": 1.5}]}))
        b = _write(tmp_path, "b.json", json.dumps({"rows": [{"gwc": 1.7}]}))
        (line,) = diff_artifacts(a, b)
        assert "rows[0].gwc" in line
        assert "1.5" in line and "1.7" in line

    def test_missing_and_extra_keys(self, tmp_path):
        a = _write(tmp_path, "a.json", '{"old": 1, "both": 2}')
        b = _write(tmp_path, "b.json", '{"new": 3, "both": 2}')
        lines = "\n".join(diff_artifacts(a, b))
        assert "old: only in golden" in lines
        assert "new: only in current" in lines

    def test_list_length_change(self, tmp_path):
        a = _write(tmp_path, "a.json", '{"rows": [1, 2, 3]}')
        b = _write(tmp_path, "b.json", '{"rows": [1, 2]}')
        lines = "\n".join(diff_artifacts(a, b))
        assert "3 golden item(s) vs 2 current" in lines

    def test_volatile_fields_never_diff(self, tmp_path):
        a = _write(tmp_path, "a.json", '{"host": "a", "v": 1}')
        b = _write(tmp_path, "b.json", '{"host": "b", "v": 1}')
        assert diff_artifacts(a, b, volatile=("host",)) == []

    def test_truncated_current_reported(self, tmp_path):
        a = _write(tmp_path, "a.json", '{"v": 1}')
        b = _write(tmp_path, "b.json", '{"v": ')
        lines = diff_artifacts(a, b)
        assert any("truncated artifact" in line for line in lines)


class TestCsvDiff:
    def test_cell_diff_names_row_and_column(self, tmp_path):
        a = _write(tmp_path, "a.csv", "n,gwc\n3,1.5\n5,2.5\n")
        b = _write(tmp_path, "b.csv", "n,gwc\n3,1.5\n5,2.6\n")
        (line,) = diff_artifacts(a, b)
        assert "row 2" in line and "[gwc]" in line
        assert "'2.5'" in line and "'2.6'" in line

    def test_row_count_change(self, tmp_path):
        a = _write(tmp_path, "a.csv", "n\n1\n2\n")
        b = _write(tmp_path, "b.csv", "n\n1\n")
        lines = "\n".join(diff_artifacts(a, b))
        assert "2 golden data row(s) vs 1 current" in lines

    def test_header_change(self, tmp_path):
        a = _write(tmp_path, "a.csv", "n,old\n1,2\n")
        b = _write(tmp_path, "b.csv", "n,new\n1,2\n")
        lines = "\n".join(diff_artifacts(a, b))
        assert "header" in lines

    def test_report_capped(self, tmp_path):
        rows_a = "\n".join(f"{i},0" for i in range(100))
        rows_b = "\n".join(f"{i},1" for i in range(100))
        a = _write(tmp_path, "a.csv", "i,v\n" + rows_a + "\n")
        b = _write(tmp_path, "b.csv", "i,v\n" + rows_b + "\n")
        lines = diff_artifacts(a, b)
        assert len(lines) == MAX_DIFFS_PER_FILE + 1
        assert "more difference(s)" in lines[-1]


class TestTextDiff:
    def test_line_diff(self, tmp_path):
        a = _write(tmp_path, "a.txt", "same\ngolden\n")
        b = _write(tmp_path, "b.txt", "same\ncurrent\n")
        (line,) = diff_artifacts(a, b)
        assert "line 2" in line
