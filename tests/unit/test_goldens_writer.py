"""Unit tests: atomic writes, manifest-last runs, stale-partial cleanup."""

import pytest

from repro.errors import ExperimentError
from repro.goldens.manifest import (
    MANIFEST_NAME,
    load_manifest,
    manifest_errors,
)
from repro.goldens.writer import TMP_PREFIX, RunWriter, atomic_write_text


class TestAtomicWrite:
    def test_creates_file_with_content(self, tmp_path):
        target = tmp_path / "a.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text() == "hello\n"

    def test_replaces_never_truncates(self, tmp_path):
        target = tmp_path / "a.txt"
        target.write_text("old content")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "a.txt", "x" * 100_000)
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(TMP_PREFIX)]
        assert leftovers == []

    def test_failure_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "a.txt"
        target.write_text("precious")
        with pytest.raises(TypeError):
            atomic_write_text(target, object())  # not a str: write blows up
        assert target.read_text() == "precious"
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(TMP_PREFIX)]
        assert leftovers == []


class TestRunWriter:
    def test_manifest_written_last(self, tmp_path):
        run = RunWriter(tmp_path / "run", "t")
        run.write_json("a.json", {"x": 1})
        run.write_text("b.txt", "hi\n")
        # Before finalize: artifacts exist, the directory is NOT valid.
        assert (tmp_path / "run" / "a.json").is_file()
        assert not (tmp_path / "run" / MANIFEST_NAME).exists()
        assert manifest_errors(tmp_path / "run")  # invalid without manifest
        run.finalize()
        assert manifest_errors(tmp_path / "run") == []
        manifest = load_manifest(tmp_path / "run")
        assert set(manifest.files) == {"a.json", "b.txt"}
        assert manifest.surface == "t"

    def test_csv_rows(self, tmp_path):
        run = RunWriter(tmp_path / "run", "t")
        run.write_csv("r.csv", [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        run.finalize()
        assert (tmp_path / "run" / "r.csv").read_text().startswith("a,b")
        assert manifest_errors(tmp_path / "run") == []

    def test_truncation_detected_after_the_fact(self, tmp_path):
        run = RunWriter(tmp_path / "run", "t")
        run.write_text("a.txt", "full content here\n")
        run.finalize()
        # Simulate a torn write / disk corruption on the completed run.
        (tmp_path / "run" / "a.txt").write_text("full")
        problems = manifest_errors(tmp_path / "run")
        assert any("bytes" in p for p in problems)

    def test_single_byte_tamper_detected(self, tmp_path):
        run = RunWriter(tmp_path / "run", "t")
        run.write_text("a.txt", "abc\n")
        run.finalize()
        (tmp_path / "run" / "a.txt").write_text("abd\n")
        problems = manifest_errors(tmp_path / "run")
        assert any("raw sha256" in p for p in problems)

    def test_stray_file_detected(self, tmp_path):
        run = RunWriter(tmp_path / "run", "t")
        run.write_text("a.txt", "x\n")
        run.finalize()
        (tmp_path / "run" / "intruder.txt").write_text("boo")
        problems = manifest_errors(tmp_path / "run")
        assert any("not in the manifest" in p for p in problems)

    def test_stale_partial_cleanup_on_next_run(self, tmp_path):
        # An interrupted run: artifacts on disk, no manifest.
        crashed = RunWriter(tmp_path / "run", "t")
        crashed.write_json("a.json", {"x": 1})
        crashed.write_json("b.json", {"y": 2})
        # ... SIGKILL here: finalize() never happens.
        notes = []
        fresh = RunWriter(tmp_path / "run", "t", out=notes.append)
        assert sorted(fresh.cleaned_stale) == ["a.json", "b.json"]
        assert any("stale partial" in note for note in notes)
        fresh.write_json("a.json", {"x": 1})
        fresh.finalize()
        assert manifest_errors(tmp_path / "run") == []
        assert not (tmp_path / "run" / "b.json").exists()

    def test_orphan_temp_files_removed(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / f"{TMP_PREFIX}a.json-zz").write_text("partial bytes")
        fresh = RunWriter(run_dir, "t")
        assert list(run_dir.iterdir()) == []
        # Orphaned temps are not artifacts: not reported as stale.
        assert fresh.cleaned_stale == []

    def test_replacing_a_completed_run_invalidates_first(self, tmp_path):
        run = RunWriter(tmp_path / "run", "t")
        run.write_text("old.txt", "old\n")
        run.finalize()
        # Claiming the directory again deletes the manifest immediately:
        # a crash mid-rewrite must not leave a manifest blessing a mix.
        again = RunWriter(tmp_path / "run", "t")
        assert not (tmp_path / "run" / MANIFEST_NAME).exists()
        assert not (tmp_path / "run" / "old.txt").exists()
        assert again.cleaned_stale == []  # previous run was complete

    def test_duplicate_name_rejected(self, tmp_path):
        run = RunWriter(tmp_path / "run", "t")
        run.write_text("a.txt", "x\n")
        with pytest.raises(ExperimentError, match="twice"):
            run.write_text("a.txt", "y\n")

    def test_reserved_names_rejected(self, tmp_path):
        run = RunWriter(tmp_path / "run", "t")
        with pytest.raises(ExperimentError):
            run.write_text(MANIFEST_NAME, "{}")
        with pytest.raises(ExperimentError):
            run.write_text("sub/a.txt", "x")

    def test_write_after_finalize_rejected(self, tmp_path):
        run = RunWriter(tmp_path / "run", "t")
        run.finalize()
        with pytest.raises(ExperimentError, match="finalized"):
            run.write_text("late.txt", "x")
        with pytest.raises(ExperimentError, match="twice"):
            run.finalize()

    def test_volatile_spec_recorded_in_manifest(self, tmp_path):
        run = RunWriter(tmp_path / "run", "t")
        run.write_json("a.json", {"host": "h", "rows": [1]}, volatile=("host",))
        run.finalize()
        manifest = load_manifest(tmp_path / "run")
        assert manifest.files["a.json"].volatile == ("host",)
        # Canonical hash must ignore the volatile field: rewrite with a
        # different host and the recorded hash still matches.
        run2 = RunWriter(tmp_path / "run2", "t")
        run2.write_json("a.json", {"host": "other", "rows": [1]}, volatile=("host",))
        run2.finalize()
        manifest2 = load_manifest(tmp_path / "run2")
        assert manifest.files["a.json"].sha256 == manifest2.files["a.json"].sha256
        assert (
            manifest.files["a.json"].raw_sha256
            != manifest2.files["a.json"].raw_sha256
        )

    def test_empty_directory_is_invalid(self, tmp_path):
        (tmp_path / "run").mkdir()
        assert manifest_errors(tmp_path / "run")
