"""End-of-run deadlock reporting and process kill/wait diagnostics."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.waiters import Future, Signal


class TestCheckQuiescentReport:
    def test_report_names_each_process_and_wait_target(self):
        sim = Simulator()
        lock_signal = Signal(name="n0.lock")
        reply = Future(name="rpc.reply")

        def signal_waiter():
            yield 1.0
            yield lock_signal

        def future_waiter():
            yield 2.0
            yield reply

        sim.spawn(signal_waiter(), name="worker-a")
        sim.spawn(future_waiter(), name="worker-b")
        sim.run()
        with pytest.raises(SimulationError) as excinfo:
            sim.check_quiescent()
        message = str(excinfo.value)
        assert "2 blocked process(es)" in message
        assert "- worker-a: waiting on signal 'n0.lock' since t=1" in message
        assert "- worker-b: waiting on future 'rpc.reply' since t=2" in message

    def test_report_names_join_target(self):
        sim = Simulator()

        def child():
            yield Future(name="never")

        def parent(proc):
            yield proc

        child_proc = sim.spawn(child(), name="child")
        sim.spawn(parent(child_proc), name="parent")
        sim.run()
        with pytest.raises(SimulationError, match="join on process 'child'"):
            sim.check_quiescent()

    def test_quiescent_run_passes(self):
        sim = Simulator()

        def proc():
            yield 1.0

        sim.spawn(proc(), name="p")
        sim.run()
        sim.check_quiescent()  # must not raise


class TestDescribeWait:
    def test_runnable_process(self):
        sim = Simulator()

        def proc():
            yield 5.0

        p = sim.spawn(proc(), name="p")
        assert p.describe_wait() == "runnable (next step scheduled)"
        sim.run()
        assert p.describe_wait() == "finished"

    def test_wait_timestamp_recorded(self):
        sim = Simulator()
        future = Future(name="f")

        def proc():
            yield 2.5
            yield future

        p = sim.spawn(proc(), name="p")
        sim.run()
        assert p.waiting_on is future
        assert p.waiting_since == 2.5
        assert "since t=2.5" in p.describe_wait()


class TestKill:
    def test_killed_process_reports_killed_and_unblocks_quiescence(self):
        sim = Simulator()

        def proc():
            yield Future(name="never")

        p = sim.spawn(proc(), name="doomed")
        sim.schedule(1.0, p.kill)
        sim.run()
        assert p.killed and p.finished
        assert p.describe_wait() == "killed"
        sim.check_quiescent()  # killed processes are not "blocked"

    def test_kill_resumes_joiners_with_none(self):
        sim = Simulator()
        got: list[object] = []

        def child():
            yield Future(name="never")
            return "unreachable"

        def parent(proc):
            got.append((yield proc))

        child_proc = sim.spawn(child(), name="child")
        sim.spawn(parent(child_proc), name="parent")
        sim.schedule(1.0, child_proc.kill)
        sim.run()
        assert got == [None]

    def test_kill_runs_generator_cleanup(self):
        sim = Simulator()
        cleaned: list[bool] = []

        def proc():
            try:
                yield Future(name="never")
            finally:
                cleaned.append(True)

        p = sim.spawn(proc(), name="p")
        sim.schedule(1.0, p.kill)
        sim.run()
        assert cleaned == [True]

    def test_scheduled_resume_after_kill_is_noop(self):
        sim = Simulator()

        def proc():
            yield 5.0  # resume already queued for t=5

        p = sim.spawn(proc(), name="p")
        sim.schedule(1.0, p.kill)
        sim.run()  # the stale t=5 resume must not raise ProcessError
        assert p.killed

    def test_kill_finished_process_is_noop(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return "done"

        p = sim.spawn(proc(), name="p")
        sim.run()
        p.kill()
        assert p.finished and not p.killed
        assert p.result == "done"

    def test_double_kill_is_noop(self):
        sim = Simulator()

        def proc():
            yield Future(name="never")

        p = sim.spawn(proc(), name="p")
        sim.schedule(1.0, p.kill)
        sim.schedule(2.0, p.kill)
        sim.run()
        assert p.killed
