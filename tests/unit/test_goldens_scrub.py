"""Unit tests: volatile-field scrubbing and canonical artifact hashing."""

import json

import pytest

from repro.errors import ExperimentError
from repro.goldens.scrub import (
    BENCH_VOLATILE,
    canonical_file_hash,
    raw_file_hash,
    scrub_payload,
)


class TestScrubPayload:
    def test_drops_top_level_subtree(self):
        payload = {"host": {"cpu": "xeon"}, "schema": 3}
        assert scrub_payload(payload, ("host",)) == {"schema": 3}

    def test_drops_nested_path(self):
        payload = {"sharded": {"serial_wall_s": 1.2, "rollbacks": 4}}
        scrubbed = scrub_payload(payload, ("sharded.serial_wall_s",))
        assert scrubbed == {"sharded": {"rollbacks": 4}}

    def test_lists_are_transparent(self):
        payload = {"rows": [{"count": 1, "secs": 0.5}, {"count": 2, "secs": 0.7}]}
        scrubbed = scrub_payload(payload, ("rows.secs",))
        assert scrubbed == {"rows": [{"count": 1}, {"count": 2}]}

    def test_wildcard_segment(self):
        payload = {"a": {"t": 1, "keep": 2}, "b": {"t": 3, "keep": 4}}
        scrubbed = scrub_payload(payload, ("*.t",))
        assert scrubbed == {"a": {"keep": 2}, "b": {"keep": 4}}

    def test_input_not_mutated(self):
        payload = {"host": "x", "keep": [{"v": 1}]}
        scrub_payload(payload, ("host",))
        assert payload == {"host": "x", "keep": [{"v": 1}]}

    def test_no_patterns_is_identity(self):
        payload = {"a": [1, 2, {"b": None}]}
        assert scrub_payload(payload) == payload

    def test_pattern_shorter_than_path_does_not_match(self):
        # "a" drops the whole subtree; "a.b" must not drop key "a" itself.
        payload = {"a": {"b": 1, "c": 2}}
        assert scrub_payload(payload, ("a.b",)) == {"a": {"c": 2}}


class TestBenchVolatile:
    def test_keeps_semantic_fields_drops_host_and_timings(self):
        snapshot = {
            "schema": 4,
            "python": "3.11.7",
            "cpu_count": 8,
            "host": {"cpu_model": "x", "platform": "y"},
            "kernel": {"events_per_sec": 12345},
            "sweeps": {"figure8_quick_s": 0.5},
            "baseline": {"speedup_serial": 2.0},
            "burst_ablation": [{"burst": 1, "origin_messages": 512}],
            "sharded": {
                "workload": "figure2 task queue",
                "serial_wall_s": 0.1,
                "events_per_sec_serial": 999,
                "backends": [
                    {
                        "backend": "inproc",
                        "effective": "inproc",
                        "wall_s": 0.4,
                        "events_per_sec": 250,
                        "rollbacks": 7,
                        "rollback_ratio": 0.09,
                        "speedup_vs_serial": 0.25,
                        "overhead_vs_serial": 4.0,
                        "parity": True,
                    },
                    {
                        "backend": "process",
                        "effective": "process",
                        "wall_s": 0.05,
                        "events_per_sec": 2000,
                        "rollbacks": 9,
                        "rollback_ratio": 0.11,
                        "speedup_vs_serial": 2.0,
                        "overhead_vs_serial": 0.5,
                        "parity": True,
                    },
                ],
            },
        }
        scrubbed = scrub_payload(snapshot, BENCH_VOLATILE)
        assert scrubbed == {
            "schema": 4,
            "burst_ablation": [{"burst": 1, "origin_messages": 512}],
            "sharded": {
                "workload": "figure2 task queue",
                "backends": [
                    {"backend": "inproc", "parity": True},
                    {"backend": "process", "parity": True},
                ],
            },
        }


class TestCanonicalFileHash:
    def test_json_key_order_does_not_matter(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text('{"x": 1, "y": 2}')
        b.write_text('{"y": 2, "x": 1}')
        assert canonical_file_hash(a) == canonical_file_hash(b)
        assert raw_file_hash(a) != raw_file_hash(b)

    def test_volatile_fields_do_not_affect_hash(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps({"host": "fast-box", "rows": [1, 2]}))
        b.write_text(json.dumps({"host": "slow-box", "rows": [1, 2]}))
        assert canonical_file_hash(a, ("host",)) == canonical_file_hash(
            b, ("host",)
        )
        assert canonical_file_hash(a) != canonical_file_hash(b)

    def test_semantic_change_changes_hash(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps({"rows": [1, 2]}))
        b.write_text(json.dumps({"rows": [1, 3]}))
        assert canonical_file_hash(a) != canonical_file_hash(b)

    def test_csv_newline_normalization(self, tmp_path):
        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        a.write_bytes(b"x,y\r\n1,2\r\n")
        b.write_bytes(b"x,y\n1,2\n")
        assert canonical_file_hash(a) == canonical_file_hash(b)

    def test_int_float_distinction_survives(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text('{"v": 2}')
        b.write_text('{"v": 2.0}')
        assert canonical_file_hash(a) != canonical_file_hash(b)

    def test_truncated_json_raises(self, tmp_path):
        a = tmp_path / "a.json"
        a.write_text('{"rows": [1, 2')
        with pytest.raises(ExperimentError, match="truncated"):
            canonical_file_hash(a)
