"""Unit tests for metrics, speedup math, and table rendering."""

from __future__ import annotations

import pytest

from repro.metrics.collector import MachineMetrics, NodeMetrics
from repro.metrics.report import format_table
from repro.metrics.speedup import efficiency, network_power, relative_gain, speedup


class TestNodeMetrics:
    def test_buckets(self):
        node = NodeMetrics(node=0)
        node.add_time("useful", 2.0)
        node.add_time("overhead", 0.5)
        node.add_time("wasted", 0.25)
        assert node.useful == 2.0
        assert node.overhead == 0.5
        assert node.wasted == 0.25
        assert node.idle(4.0) == pytest.approx(1.25)

    def test_unknown_bucket_rejected(self):
        with pytest.raises(ValueError):
            NodeMetrics(node=0).add_time("fun", 1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            NodeMetrics(node=0).add_time("useful", -1.0)

    def test_efficiency(self):
        node = NodeMetrics(node=0)
        node.add_time("useful", 3.0)
        assert node.efficiency(4.0) == pytest.approx(0.75)
        assert node.efficiency(0.0) == 0.0

    def test_counters(self):
        node = NodeMetrics(node=0)
        node.count("x")
        node.count("x", 4)
        assert node.counters["x"] == 5


class TestMachineMetrics:
    def test_speedup_is_total_useful_over_elapsed(self):
        metrics = MachineMetrics(4)
        for i in range(4):
            metrics[i].add_time("useful", 2.0)
        metrics.elapsed = 4.0
        assert metrics.speedup() == pytest.approx(2.0)
        assert metrics.average_efficiency() == pytest.approx(0.5)

    def test_speedup_equals_avg_efficiency_times_size(self):
        """The paper's two phrasings of speedup agree."""
        metrics = MachineMetrics(3)
        metrics[0].add_time("useful", 1.0)
        metrics[1].add_time("useful", 2.0)
        metrics[2].add_time("useful", 3.0)
        metrics.elapsed = 10.0
        assert metrics.speedup() == pytest.approx(
            metrics.average_efficiency() * metrics.n_nodes
        )

    def test_total_counter(self):
        metrics = MachineMetrics(2)
        metrics[0].count("a", 2)
        metrics[1].count("a", 3)
        assert metrics.total_counter("a") == 5
        assert metrics.total_counter("missing") == 0

    def test_summary_keys(self):
        metrics = MachineMetrics(1)
        metrics.elapsed = 1.0
        summary = metrics.summary()
        assert set(summary) == {"elapsed", "useful", "wasted", "speedup", "efficiency"}


class TestSpeedupMath:
    def test_efficiency(self):
        assert efficiency(1.0, 2.0) == 0.5
        assert efficiency(1.0, 0.0) == 0.0

    def test_negative_useful_rejected(self):
        with pytest.raises(ValueError):
            efficiency(-1.0, 2.0)
        with pytest.raises(ValueError):
            speedup(-1.0, 2.0)

    def test_network_power_alias(self):
        assert network_power(6.0, 2.0) == speedup(6.0, 2.0) == 3.0

    def test_relative_gain(self):
        assert relative_gain(2.1, 1.0) == pytest.approx(2.1)
        with pytest.raises(ValueError):
            relative_gain(1.0, 0.0)


class TestFormatTable:
    def test_renders_aligned_columns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].split() == ["a", "bb"]

    def test_title(self):
        text = format_table(["x"], [[1]], title="Title")
        assert text.startswith("Title\n=====")

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[1234.5678], [0.0000001], [0.5]])
        assert "1.235e+03" in text
        assert "1.000e-07" in text
        assert "0.500" in text
