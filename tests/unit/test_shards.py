"""Unit tests for the sharded Time Warp kernel's building blocks.

Covers the pure pieces in isolation: :class:`ShardPlan` partitioning,
the caller-keyed event queue API (``push_at_key`` / ``run_window``),
anti-message annihilation, straggler classification at the exact
checkpoint boundary, and the cascading-rollback fixpoint.  End-to-end
serial-parity runs live in ``tests/integration/test_shard_parity.py``.
"""

from __future__ import annotations

import pytest

from repro.errors import ShardingError
from repro.net.message import Message
from repro.sim.event import (
    PRIORITY_ARRIVAL_BAND,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    Event,
    EventQueue,
)
from repro.sim.kernel import Simulator
from repro.sim.shards import (
    _ANNIHILATED,
    _DELIVERED,
    _DELIVERY_PRIORITY,
    _EXECUTED,
    _PRIORITY_CEILING,
    DEFAULT_WINDOW_FACTOR,
    ShardedSimulator,
    ShardPlan,
    ShardStats,
    _Delivery,
)
from repro.workloads.base import build_machine
from repro.workloads.task_queue import TaskQueueConfig, _build_task_queue


class TestShardPlan:
    def test_even_split_without_groups(self):
        plan = ShardPlan.from_groups(8, 2)
        assert plan.owner == (0, 0, 0, 0, 1, 1, 1, 1)
        assert plan.n_shards == 2
        assert plan.owned(1) == frozenset({4, 5, 6, 7})

    def test_shard_ids_dense_and_node_zero_first(self):
        for n_nodes, n_shards in [(5, 2), (9, 4), (7, 3), (3, 3)]:
            plan = ShardPlan.from_groups(n_nodes, n_shards)
            assert plan.owner[0] == 0
            assert sorted(set(plan.owner)) == list(range(plan.n_shards))

    def test_more_shards_than_nodes_clamps(self):
        plan = ShardPlan.from_groups(3, 8)
        assert plan.n_shards <= 3
        assert plan.n_nodes == 3

    def test_group_members_colocate_when_they_fit(self):
        plan = ShardPlan.from_groups(6, 2, groups=[(0, 3), (1, 4)])
        assert plan.shard_of(0) == plan.shard_of(3)
        assert plan.shard_of(1) == plan.shard_of(4)
        assert plan.n_shards == 2

    def test_oversized_cluster_splits_contiguously(self):
        # One machine-wide group cannot fit any shard's quota; it must
        # stream across shards in contiguous blocks.
        plan = ShardPlan.from_groups(6, 3, groups=[range(6)])
        assert plan.owner == (0, 0, 1, 1, 2, 2)

    def test_shard_of_matches_owned(self):
        plan = ShardPlan.from_groups(9, 3, groups=[(0, 1, 2, 3)])
        for node in range(9):
            assert node in plan.owned(plan.shard_of(node))

    def test_invalid_inputs_raise(self):
        with pytest.raises(ShardingError):
            ShardPlan.from_groups(0, 2)
        with pytest.raises(ShardingError):
            ShardPlan.from_groups(4, 0)
        with pytest.raises(ShardingError):
            ShardPlan(())
        with pytest.raises(ShardingError):
            ShardPlan((0, 2))  # ids must be dense from 0


class TestArrivalBandKeys:
    def test_band_sorts_before_every_local_priority(self):
        assert PRIORITY_ARRIVAL_BAND < PRIORITY_URGENT < PRIORITY_NORMAL
        assert PRIORITY_ARRIVAL_BAND < -1

    def test_push_at_key_orders_tokens_in_send_order(self):
        queue = EventQueue()
        fired: list[str] = []
        # Three same-instant arrivals with shuffled send-order tokens,
        # plus a same-time local event: arrivals fire first, in token
        # (send time, src, idx) order.
        queue.push(1.0, lambda: fired.append("local"))
        queue.push_at_key(
            1.0, PRIORITY_ARRIVAL_BAND, (0.7, 2, 0), lambda: fired.append("b")
        )
        queue.push_at_key(
            1.0, PRIORITY_ARRIVAL_BAND, (0.5, 4, 1), lambda: fired.append("a")
        )
        queue.push_at_key(
            1.0, PRIORITY_ARRIVAL_BAND, (0.7, 2, 3), lambda: fired.append("c")
        )
        while queue:
            queue.pop().fn()
        assert fired == ["a", "b", "c", "local"]

    def test_push_at_key_is_cancellable(self):
        queue = EventQueue()
        fired: list[str] = []
        event = queue.push_at_key(
            1.0, PRIORITY_ARRIVAL_BAND, (0.5, 0, 0), lambda: fired.append("x")
        )
        queue.push(2.0, lambda: fired.append("kept"))
        event.cancel()
        assert len(queue) == 1
        while queue:
            queue.pop().fn()
        assert fired == ["kept"]

    def test_identical_keys_tolerated(self):
        # A rolled-back shard re-emits an annihilated delivery under the
        # *identical* replayed key while the cancelled original is still
        # in the heap; the heap then compares the Event objects.
        assert not Event(1.0, 0, 0, lambda: None) < Event(1.0, 0, 0, lambda: None)
        queue = EventQueue()
        fired: list[str] = []
        key = (1.0, PRIORITY_ARRIVAL_BAND, (0.5, 0, 0))
        original = queue.push_at_key(*key, lambda: fired.append("original"))
        original.cancel()
        queue.push_at_key(*key, lambda: fired.append("replacement"))
        while queue:
            queue.pop().fn()
        assert fired == ["replacement"]


class TestRunWindow:
    def _sim(self) -> Simulator:
        return Simulator()

    def test_limit_key_is_exclusive(self):
        # The coast-forward contract: restoring to straggler key K must
        # replay everything strictly below K and nothing at or above it.
        sim = self._sim()
        fired: list[str] = []
        key = (2.0, PRIORITY_ARRIVAL_BAND, (1.5, 0, 0))
        sim._queue.push(1.0, lambda: fired.append("before"))
        sim._queue.push_at_key(*key, lambda: fired.append("at-limit"))
        sim._queue.push(3.0, lambda: fired.append("after"))
        count, last = sim.run_window(key)
        assert fired == ["before"]
        assert count == 1
        assert last == (1.0, PRIORITY_NORMAL, 0)
        # The event exactly at the limit fires on the next window.
        count, last = sim.run_window((3.0, -_PRIORITY_CEILING, 0))
        assert fired == ["before", "at-limit"]
        assert last == key

    def test_time_only_horizon_excludes_whole_instant(self):
        sim = self._sim()
        fired: list[int] = []
        sim._queue.push(1.0, lambda: fired.append(1))
        sim._queue.push_at_key(
            2.0, PRIORITY_ARRIVAL_BAND, (1.0, 0, 0), lambda: fired.append(2)
        )
        # A (t, -ceiling, 0) horizon sorts below every real key at t,
        # including arrival-band keys: nothing at t fires.
        count, _last = sim.run_window((2.0, -_PRIORITY_CEILING, 0))
        assert fired == [1]
        assert count == 1

    def test_max_events_budget_stops_early(self):
        sim = self._sim()
        fired: list[int] = []
        for i in range(6):
            sim._queue.push(float(i + 1), lambda i=i: fired.append(i))
        count, last = sim.run_window((100.0, 0, 0), max_events=2)
        assert count == 2
        assert fired == [0, 1]
        assert last == (2.0, PRIORITY_NORMAL, 1)

    def test_current_key_tracks_executing_event(self):
        sim = self._sim()
        seen: list[tuple] = []
        sim._queue.push(1.0, lambda: seen.append(sim.current_key))
        sim.run_window((2.0, 0, 0))
        assert seen == [(1.0, PRIORITY_NORMAL, 0)]


def _delivery(key, emit_key, src_shard=0, dst_shard=1) -> _Delivery:
    msg = Message(0, 3, "test.kind", payload=None, size_bytes=16)
    msg.sent_at = key[2][0] if isinstance(key[2], tuple) else key[0]
    return _Delivery(key, emit_key, src_shard, dst_shard, msg)


class TestAntiMessages:
    def test_annihilate_pending_delivery_cancels_its_event(self):
        queue = EventQueue()
        record = _delivery(
            (1.0, _DELIVERY_PRIORITY, (0.5, 0, 0)), (0.5, 0, 0)
        )
        record.event = queue.push_at_key(*record.key, lambda: None)
        record.state = _DELIVERED
        assert record.annihilate() is False
        assert record.state == _ANNIHILATED
        assert record.event is None
        assert len(queue) == 0  # the heap entry is a skipped no-op

    def test_annihilate_executed_delivery_reports_cascade(self):
        record = _delivery(
            (1.0, _DELIVERY_PRIORITY, (0.5, 0, 0)), (0.5, 0, 0)
        )
        record.state = _EXECUTED
        assert record.annihilate() is True
        assert record.state == _ANNIHILATED

    def test_annihilate_is_idempotent_on_cancelled(self):
        record = _delivery(
            (1.0, _DELIVERY_PRIORITY, (0.5, 0, 0)), (0.5, 0, 0)
        )
        record.state = _DELIVERED
        assert record.annihilate() is False
        assert record.annihilate() is False


def _task_queue_kernel(
    n_nodes: int = 5, shards: int = 2, policy: str = "optimistic"
) -> ShardedSimulator:
    config = TaskQueueConfig(n_nodes=n_nodes, total_tasks=4)
    plan = ShardPlan.from_groups(n_nodes, shards)
    return ShardedSimulator(
        lambda owned: _build_task_queue(config, owned), plan, policy=policy
    )


class TestShardedSimulatorConfig:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ShardingError, match="sync policy"):
            _task_queue_kernel(policy="yolo")

    def test_window_factor_below_one_rejected(self):
        config = TaskQueueConfig(n_nodes=5, total_tasks=4)
        with pytest.raises(ShardingError, match="window_factor"):
            ShardedSimulator(
                lambda owned: _build_task_queue(config, owned),
                ShardPlan.from_groups(5, 2),
                window_factor=0.5,
            )

    def test_conservative_window_equals_lookahead(self):
        kernel = _task_queue_kernel(policy="conservative")
        assert kernel.lookahead > 0
        assert kernel.window == kernel.lookahead
        assert all(shard.base is None for shard in kernel.shards)

    def test_optimistic_window_is_lookahead_multiple(self):
        kernel = _task_queue_kernel(policy="optimistic")
        assert kernel.window == kernel.lookahead * DEFAULT_WINDOW_FACTOR
        assert all(shard.base is not None for shard in kernel.shards)

    def test_unshardable_system_rejected(self):
        def factory(owned):
            machine, system = build_machine("entry", 4)
            machine.shard_owned = owned
            return machine, system

        with pytest.raises(ShardingError, match="not.*shardable|shardable"):
            ShardedSimulator(factory, ShardPlan.from_groups(4, 2))

    def test_factory_must_honour_owned_set(self):
        def factory(owned):
            machine, system = build_machine("gwc", 4)
            machine.shard_owned = frozenset({0})  # ignores `owned`
            return machine, system

        with pytest.raises(ShardingError, match="shard_owned"):
            ShardedSimulator(factory, ShardPlan.from_groups(4, 2))


class TestStragglerClassification:
    def test_arrival_exactly_at_lvt_is_a_straggler(self, monkeypatch):
        # The boundary case: a delivery whose key EQUALS the shard's
        # last executed key arrives in the executed past (key order is
        # execution order), so `<=` — not `<` — is the straggler test.
        kernel = _task_queue_kernel()
        injected: list[_Delivery] = []
        monkeypatch.setattr(
            _Delivery, "inject", lambda self, machine: injected.append(self)
        )
        dst = next(iter(kernel.shards[1].owned))
        token = (0.5, 0, 0)
        key = (1.0, _DELIVERY_PRIORITY, token)
        kernel.shards[1].front.lvt = key
        msg = Message(0, dst, "test.kind", payload=None, size_bytes=16)
        kernel.shards[0].front.router.outbox.append(
            (msg, 1.0, 1, token, (0.5, 0, 0))
        )
        stragglers = kernel._route_round()
        assert stragglers == {1: key}
        assert kernel.stats.stragglers == 1
        assert injected == []  # stragglers are not injected pre-rollback

    def test_arrival_just_past_lvt_is_injected_normally(self, monkeypatch):
        kernel = _task_queue_kernel()
        injected: list[_Delivery] = []
        monkeypatch.setattr(
            _Delivery, "inject", lambda self, machine: injected.append(self)
        )
        dst = next(iter(kernel.shards[1].owned))
        token = (0.5, 0, 1)
        kernel.shards[1].front.lvt = (1.0, _DELIVERY_PRIORITY, (0.5, 0, 0))
        msg = Message(0, dst, "test.kind", payload=None, size_bytes=16)
        kernel.shards[0].front.router.outbox.append(
            (msg, 1.0, 1, token, (0.5, 0, 0))
        )
        stragglers = kernel._route_round()
        assert stragglers == {}
        assert kernel.stats.stragglers == 0
        assert [record.key for record in injected] == [
            (1.0, _DELIVERY_PRIORITY, token)
        ]


class TestCascadingRollback:
    def test_executed_anti_message_cascades_to_consumer(self, monkeypatch):
        # Shard 0 rolls back past an emission shard 1 already executed;
        # annihilating it must roll shard 1 back too (and shard 1's own
        # speculative emission back toward shard 0 must also die).
        kernel = _task_queue_kernel()
        restored: list[tuple[int, tuple]] = []
        monkeypatch.setattr(
            kernel,
            "_restore",
            lambda shard, target: restored.append((shard.index, target)),
        )
        target0 = (1.0, _DELIVERY_PRIORITY, (0.9, 0, 0))
        r1 = _delivery(
            (2.0, _DELIVERY_PRIORITY, (1.5, 0, 1)),
            emit_key=(1.5, 0, 3),
            src_shard=0,
            dst_shard=1,
        )
        r1.state = _EXECUTED
        committed = _delivery(
            (0.9, _DELIVERY_PRIORITY, (0.4, 0, 0)),
            emit_key=(0.4, 0, 1),
            src_shard=0,
            dst_shard=1,
        )
        committed.state = _EXECUTED
        kernel.shards[0].outputs.extend([committed, r1])
        r2 = _delivery(
            (3.0, _DELIVERY_PRIORITY, (2.6, 3, 0)),
            emit_key=(2.6, 0, 9),
            src_shard=1,
            dst_shard=0,
        )
        r2.state = _EXECUTED
        kernel.shards[1].outputs.append(r2)
        kernel._rollback({0: target0}, gvt=0.0)
        assert r1.state == _ANNIHILATED
        assert r2.state == _ANNIHILATED
        # The emission committed before the rollback point survives.
        assert committed.state == _EXECUTED
        assert kernel.stats.annihilated == 2
        assert kernel.stats.rollbacks == 2
        assert sorted(index for index, _ in restored) == [0, 1]
        # Each shard restores to the earliest key that invalidated it.
        targets = dict(restored)
        assert targets[0] == target0
        assert targets[1] == r1.key


class TestShardStats:
    def test_rollback_ratio(self):
        stats = ShardStats()
        assert stats.rollback_ratio() == 0.0
        stats.executed = 100
        stats.replayed = 25
        assert stats.rollback_ratio() == 0.25
        summary = stats.summary()
        assert summary["executed"] == 100
        assert summary["rollback_ratio"] == 0.25
