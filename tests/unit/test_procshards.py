"""Unit tests: process-backend building blocks.

Covers the pieces the process shard backend stands on, without forking
anything: slot-exact pickling of every wire ``Message`` kind the tier-1
workloads actually produce, ``_Delivery`` round-trips, the adaptive
:class:`WindowPacer`, backend selection, and the sweep-vs-shards
oversubscription clamp.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ExperimentError
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.procshards import (
    BACKEND_INPROC,
    BACKEND_PROCESS,
    ProcessShardedSimulator,
    make_sharded_kernel,
    process_backend_unavailable,
)
from repro.sim.shards import (
    _PENDING,
    ShardedSimulator,
    ShardingError,
    ShardPlan,
    WindowPacer,
)
from repro.workloads.pipeline import PipelineConfig, run_pipeline
from repro.workloads.task_queue import (
    TaskQueueConfig,
    _build_task_queue,
    run_task_queue,
)


def _capture_message_kinds(monkeypatch) -> dict[str, Message]:
    """One exemplar Message per kind seen on the wire in tier-1 runs.

    Captures at *both* ends — injection (``send``) and delivery (the
    attached handler) — so batched fanout paths that construct their
    messages at delivery time are covered too.
    """
    seen: dict[str, Message] = {}
    orig_send = Network.send
    orig_attach = Network.attach

    def send(self, msg):
        seen.setdefault(msg.kind, msg)
        return orig_send(self, msg)

    def attach(self, node, handler, **kwargs):
        def wrapped(msg):
            seen.setdefault(msg.kind, msg)
            return handler(msg)

        return orig_attach(self, node, wrapped, **kwargs)

    monkeypatch.setattr(Network, "send", send)
    monkeypatch.setattr(Network, "attach", attach)
    run_task_queue(TaskQueueConfig(system="gwc", n_nodes=4, total_tasks=12))
    run_task_queue(TaskQueueConfig(system="entry", n_nodes=3, total_tasks=8))
    run_pipeline(
        PipelineConfig(system="gwc_optimistic", n_nodes=4, data_size=16)
    )
    return seen


class TestMessagePickling:
    def test_every_tier1_message_kind_roundtrips_slot_identically(
        self, monkeypatch
    ):
        seen = _capture_message_kinds(monkeypatch)
        # A run that produced no messages would make this test vacuous.
        assert len(seen) >= 5, sorted(seen)
        for kind, msg in sorted(seen.items()):
            copy = pickle.loads(pickle.dumps(msg))
            for slot in Message.__slots__:
                assert getattr(copy, slot) == getattr(msg, slot), (
                    f"kind {kind!r}: slot {slot!r} did not round-trip"
                )

    def test_getstate_is_a_plain_tuple(self):
        msg = Message(src=1, dst=2, kind="x", payload=(3, "y"), size_bytes=64)
        state = msg.__getstate__()
        assert isinstance(state, tuple)
        assert len(state) == len(Message.__slots__)


class TestDeliveryPickling:
    def test_sharded_run_inputs_roundtrip(self):
        config = TaskQueueConfig(system="gwc", n_nodes=5, total_tasks=16)
        kernel = ShardedSimulator(
            lambda owned: _build_task_queue(config, owned),
            ShardPlan.from_groups(5, 2),
            policy="optimistic",
        )
        kernel.run()
        records = [r for shard in kernel.shards for r in shard.inputs]
        assert records, "no cross-shard deliveries: test is vacuous"
        for record in records:
            copy = pickle.loads(pickle.dumps(record))
            for field in (
                "key",
                "emit_key",
                "src_shard",
                "dst_shard",
                "src",
                "dst",
                "kind",
                "payload",
                "size",
                "sent_at",
            ):
                assert getattr(copy, field) == getattr(record, field)
            # Execution state never crosses the wire: a shipped record
            # arrives pending, with no scheduled event or bound handler.
            assert copy.state == _PENDING
            assert copy.event is None


class TestWindowPacer:
    def test_rollback_shrinks_window_to_floor(self):
        pacer = WindowPacer(lookahead=1.0, window=16.0)
        pacer.note_round(rolled_back=True)
        assert pacer.window == 4.0
        for _ in range(10):
            pacer.note_round(rolled_back=True)
        assert pacer.window == 1.0  # floored at the lookahead

    def test_clean_rounds_recover_to_ceiling(self):
        pacer = WindowPacer(lookahead=1.0, window=16.0)
        pacer.note_round(rolled_back=True)
        for _ in range(200):
            pacer.note_round(rolled_back=False)
        assert pacer.window == 16.0  # capped at the configured window

    def test_cadence_doubles_on_clean_streaks_and_resets_on_rollback(self):
        pacer = WindowPacer(lookahead=1.0, window=16.0)
        assert pacer.cadence == 1
        for _ in range(WindowPacer.CLEAN_STREAK):
            pacer.note_round(rolled_back=False)
        assert pacer.cadence == 2
        for _ in range(WindowPacer.CLEAN_STREAK):
            pacer.note_round(rolled_back=False)
        assert pacer.cadence == 4
        pacer.note_round(rolled_back=True)
        assert pacer.cadence == 1

    def test_cadence_is_capped(self):
        pacer = WindowPacer(lookahead=1.0, window=16.0)
        for _ in range(100):
            pacer.note_round(rolled_back=False)
        assert pacer.cadence == WindowPacer.MAX_CADENCE

    def test_should_advance_fires_every_cadence_rounds(self):
        pacer = WindowPacer(lookahead=1.0, window=16.0)
        pacer.cadence = 3
        fires = [pacer.should_advance() for _ in range(9)]
        assert fires == [False, False, True] * 3

    def test_rollback_resets_the_skip_counter(self):
        pacer = WindowPacer(lookahead=1.0, window=16.0)
        pacer.cadence = 4
        assert not pacer.should_advance()
        assert not pacer.should_advance()
        pacer.note_round(rolled_back=True)  # cadence back to 1
        assert pacer.should_advance()


class TestBackendSelection:
    CONFIG = TaskQueueConfig(system="gwc", n_nodes=4, total_tasks=8)

    def _kernel(self, backend):
        return make_sharded_kernel(
            lambda owned: _build_task_queue(self.CONFIG, owned),
            ShardPlan.from_groups(4, 2),
            policy="optimistic",
            backend=backend,
        )

    def test_inproc_backend(self):
        kernel = self._kernel(BACKEND_INPROC)
        assert isinstance(kernel, ShardedSimulator)
        assert kernel.backend == BACKEND_INPROC

    def test_process_backend(self):
        if process_backend_unavailable():
            pytest.skip(process_backend_unavailable())
        kernel = self._kernel(BACKEND_PROCESS)
        try:
            assert isinstance(kernel, ProcessShardedSimulator)
            assert kernel.backend == BACKEND_PROCESS
        finally:
            kernel._shutdown()

    def test_unknown_backend_raises(self):
        with pytest.raises(ShardingError, match="backend"):
            self._kernel("threads")

    def test_env_default(self, monkeypatch):
        from repro.experiments.runner import default_shard_backend

        monkeypatch.delenv("REPRO_SHARD_BACKEND", raising=False)
        assert default_shard_backend() == "inproc"
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "process")
        assert default_shard_backend() == "process"
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "gpu")
        with pytest.raises(ExperimentError, match="REPRO_SHARD_BACKEND"):
            default_shard_backend()


class TestOversubscriptionClamp:
    def _clamp(self, jobs, shards, backend="process", available=4):
        from repro.experiments.runner import clamp_oversubscription

        return clamp_oversubscription(
            jobs, shards, backend, available=available
        )

    def test_clamps_when_jobs_times_shards_exceed_cpus(self, capsys):
        assert self._clamp(jobs=4, shards=4, available=8) == 2
        assert "[sweep]" in capsys.readouterr().err

    def test_never_clamps_below_one(self):
        assert self._clamp(jobs=4, shards=16, available=4) == 1

    def test_inproc_backend_is_untouched(self):
        assert self._clamp(jobs=8, shards=8, backend="inproc") == 8

    def test_serial_sweep_is_untouched(self):
        assert self._clamp(jobs=1, shards=8) == 1

    def test_unsharded_points_are_untouched(self):
        assert self._clamp(jobs=8, shards=1) == 8

    def test_fitting_workload_is_untouched(self):
        assert self._clamp(jobs=2, shards=2, available=8) == 2
