"""Unit-level tests for the reliable-multicast machinery."""

from __future__ import annotations

import pytest

from repro.core.machine import DSMMachine
from repro.errors import MemoryError_


def build(loss_rate=0.1, seed=0, n=4):
    machine = DSMMachine(n_nodes=n, loss_rate=loss_rate, seed=seed)
    machine.create_group("g", root=0)
    machine.declare_variable("g", "x", 0)
    return machine


class TestNackTimeoutDerivation:
    def test_timeout_set_when_lossy(self):
        machine = build(loss_rate=0.1)
        assert machine.nack_timeout is not None
        assert machine.nack_timeout >= 2e-6
        for node in machine.nodes:
            assert node.iface.nack_timeout == machine.nack_timeout

    def test_no_timeout_when_lossless(self):
        machine = build(loss_rate=0.0)
        assert machine.nack_timeout is None
        assert machine.loss_model is None

    def test_reliability_enabled_on_engines(self):
        machine = build(loss_rate=0.1)
        engine = machine.root_engine("g")
        assert engine._heartbeat_interval == machine.nack_timeout


class TestRootHistory:
    def test_history_kept_only_when_reliable(self):
        lossy = build(loss_rate=0.1)

        def writer(node):
            node.iface.share_write("x", 1)
            yield 0

        lossy.spawn(writer(lossy.nodes[1]), name="w")
        lossy.run(max_events=100_000)
        assert len(lossy.root_engine("g")._history) == 1

        clean = build(loss_rate=0.0)
        clean.spawn(writer(clean.nodes[1]), name="w")
        clean.run()
        assert len(clean.root_engine("g")._history) == 0

    def test_nack_served_from_history(self):
        machine = build(loss_rate=0.0)
        # Manually enable reliability so NACKs are legal, then write and
        # NACK from a member.
        engine = machine.root_engine("g")
        engine.enable_reliability(heartbeat_interval=5e-6)
        for node in machine.nodes:
            node.iface.nack_timeout = 5e-6

        def writer(node):
            node.iface.share_write("x", 42)
            yield 2e-6
            # Member 3 pretends it lost everything.
            machine.nodes[3].iface._next_seq["g"] = 0
            machine.nodes[3].iface._send_nack("g")

        machine.spawn(writer(machine.nodes[1]), name="w")
        machine.run(max_events=100_000)
        assert engine.retransmissions >= 1
        assert machine.nodes[3].store.read("x") == 42

    def test_nack_without_reliability_rejected(self):
        machine = build(loss_rate=0.0)
        with pytest.raises(MemoryError_):
            machine.root_engine("g").on_nack(member=1, from_seq=0)


class TestHeartbeat:
    def test_heartbeat_fires_after_quiet_period(self):
        machine = build(loss_rate=0.1, seed=0)

        def writer(node):
            node.iface.share_write("x", 1)
            yield 0

        machine.spawn(writer(machine.nodes[1]), name="w")
        machine.run(max_events=100_000)
        # One trailing heartbeat went to the non-root members.
        assert machine.network.stats.by_kind.get("gwc.heartbeat", 0) >= 3

    def test_heartbeat_resets_on_new_traffic(self):
        machine = build(loss_rate=0.1, seed=0)
        interval = machine.nack_timeout

        def writer(node):
            # Writes spaced at half the heartbeat interval: the timer
            # keeps being pushed back, so at most one trailing heartbeat
            # burst fires after the last write.
            for i in range(6):
                node.iface.share_write("x", i)
                yield interval / 2

        machine.spawn(writer(machine.nodes[1]), name="w")
        machine.run(max_events=200_000)
        beats = machine.network.stats.by_kind.get("gwc.heartbeat", 0)
        assert beats == 3  # exactly one burst to the 3 non-root members
