"""Unit tests for spanning trees and the sequenced multicast."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.net.multicast import MulticastTree
from repro.net.network import Network
from repro.net.spanning_tree import build_bfs_tree
from repro.net.topology import MeshTorus, Ring, Star
from repro.params import MachineParams
from repro.sim.kernel import Simulator


class TestBuildTree:
    def test_tree_spans_all_members(self):
        tree = build_bfs_tree(MeshTorus(9), root=0, members=tuple(range(9)))
        assert tree.members == tuple(range(9))
        assert tree.parent[0] == 0

    def test_tree_distance_equals_metric_distance(self):
        """The key timing property: the tree never lengthens the path
        from the root to any member."""
        topo = MeshTorus(16)
        tree = build_bfs_tree(topo, root=3, members=tuple(range(16)))
        for member in range(16):
            assert tree.depth_hops[member] == topo.hops(3, member)

    def test_subset_membership(self):
        tree = build_bfs_tree(Ring(10), root=2, members=(2, 4, 8))
        assert tree.members == (2, 4, 8)
        assert 5 not in tree.parent

    def test_children_inverse_of_parent(self):
        tree = build_bfs_tree(MeshTorus(12), root=0, members=tuple(range(12)))
        for node, kids in tree.children.items():
            for kid in kids:
                assert tree.parent[kid] == node

    def test_path_to_root_terminates(self):
        tree = build_bfs_tree(Star(6), root=0, members=tuple(range(6)))
        for member in range(6):
            path = tree.path_to_root(member)
            assert path[0] == member
            assert path[-1] == 0

    def test_validate_passes_on_built_trees(self):
        topo = MeshTorus(9)
        tree = build_bfs_tree(topo, root=4, members=tuple(range(9)))
        tree.validate(topo)

    def test_member_out_of_range_rejected(self):
        with pytest.raises(TopologyError):
            build_bfs_tree(Ring(4), root=0, members=(0, 9))

    def test_deterministic_construction(self):
        a = build_bfs_tree(MeshTorus(16), root=0, members=tuple(range(16)))
        b = build_bfs_tree(MeshTorus(16), root=0, members=tuple(range(16)))
        assert a.parent == b.parent

    def test_path_to_root_unknown_member(self):
        tree = build_bfs_tree(Ring(4), root=0, members=(0, 1))
        with pytest.raises(TopologyError):
            tree.path_to_root(3)


class TestMulticast:
    def make(self, n=6, root=0):
        sim = Simulator()
        network = Network(sim, Ring(n), MachineParams())
        return sim, network, MulticastTree(network, root, tuple(range(n)))

    def test_reaches_every_member(self):
        sim, network, tree = self.make()
        got = {}
        for node in range(6):
            network.attach(node, lambda m, node=node: got.setdefault(node, m.payload))
        tree.multicast("gwc.apply", "payload", size_bytes=16)
        sim.run()
        assert set(got) == set(range(6))
        assert all(v == "payload" for v in got.values())

    def test_exclude_root(self):
        sim, network, tree = self.make()
        got = set()
        for node in range(6):
            network.attach(node, lambda m, node=node: got.add(node))
        tree.multicast("gwc.apply", None, size_bytes=16, include_root=False)
        sim.run()
        assert got == {1, 2, 3, 4, 5}

    def test_nearer_members_receive_earlier(self):
        sim, network, tree = self.make()
        times = {}
        for node in range(6):
            network.attach(node, lambda m, node=node: times.setdefault(node, sim.now))
        tree.multicast("gwc.apply", None, size_bytes=16)
        sim.run()
        assert times[1] < times[3]  # 1 hop vs 3 hops on the ring

    def test_sequence_numbers_monotonic(self):
        sim, network, tree = self.make()
        seqs = [tree.next_sequence() for _ in range(5)]
        assert seqs == [0, 1, 2, 3, 4]
