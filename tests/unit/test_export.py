"""Unit tests for CSV export."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.errors import ExperimentError
from repro.metrics.export import (
    channel_stats_rows,
    channel_stats_summary,
    to_csv,
    to_csv_columns,
    write_csv,
)
from repro.net.network import ChannelStats


@dataclass(frozen=True)
class _Row:
    n: int
    value: float


class TestToCsv:
    def test_dataclass_rows(self):
        text = to_csv([_Row(1, 2.5), _Row(2, 3.5)])
        lines = text.strip().splitlines()
        assert lines[0] == "n,value"
        assert lines[1] == "1,2.5"
        assert lines[2] == "2,3.5"

    def test_dict_rows(self):
        text = to_csv([{"a": 1, "b": "x"}])
        assert text.strip().splitlines() == ["a,b", "1,x"]

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            to_csv([])

    def test_inconsistent_fields_rejected(self):
        with pytest.raises(ExperimentError):
            to_csv([{"a": 1}, {"b": 2}])

    def test_unsupported_type_rejected(self):
        with pytest.raises(ExperimentError):
            to_csv([(1, 2)])


class TestToCsvColumns:
    def test_positional_rows(self):
        text = to_csv_columns(["x", "y"], [[1, 2], [3, 4]])
        assert text.strip().splitlines() == ["x,y", "1,2", "3,4"]

    def test_width_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            to_csv_columns(["x"], [[1, 2]])

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            to_csv_columns(["x"], [])


class TestWriteCsv:
    def test_writes_file(self, tmp_path):
        target = write_csv(tmp_path / "sub" / "out.csv", [_Row(1, 2.0)])
        assert target.exists()
        assert target.read_text().startswith("n,value")


class TestChannelStatsExport:
    def _stats(self) -> ChannelStats:
        stats = ChannelStats()
        stats.messages = 10
        stats.bytes = 640
        stats.dropped = 3
        stats.loss_dropped = 1
        stats.fault_dropped = 2
        stats.fault_delayed = 4
        stats.fault_duplicated = 5
        stats.inbound.update({0: 4, 1: 3})
        stats.outbound.update({0: 5, 2: 5})
        stats.dropped_inbound.update({1: 3})
        return stats

    def test_summary_flattens_all_counters(self):
        assert channel_stats_summary(self._stats()) == {
            "messages": 10,
            "bytes": 640,
            "dropped": 3,
            "loss_dropped": 1,
            "fault_dropped": 2,
            "fault_delayed": 4,
            "fault_duplicated": 5,
            "failovers": 0,
            "stale_epoch_discards": 0,
            "rerouted_requests": 0,
        }

    def test_rows_cover_every_node_seen(self):
        rows = channel_stats_rows(self._stats())
        assert [row["node"] for row in rows] == [0, 1, 2]
        assert rows[1] == {
            "node": 1,
            "inbound": 3,
            "outbound": 0,
            "dropped_inbound": 3,
        }

    def test_rows_round_trip_through_csv(self):
        text = to_csv(channel_stats_rows(self._stats()))
        assert text.splitlines()[0] == "node,inbound,outbound,dropped_inbound"
        assert len(text.strip().splitlines()) == 4

    def test_fresh_stats_summary_is_all_zero(self):
        summary = channel_stats_summary(ChannelStats())
        assert all(value == 0 for value in summary.values())


class TestBenchArchives:
    def test_figure_csvs_parse(self):
        """The archived figure CSVs round-trip through the csv module."""
        import csv
        import pathlib

        results = pathlib.Path("benchmarks/results")
        for name in ("figure1.csv", "figure2.csv"):
            path = results / name
            if not path.exists():
                pytest.skip(f"{name} not yet generated")
            rows = list(csv.DictReader(path.open()))
            assert rows, name
