"""Unit tests for CSV export."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.errors import ExperimentError
from repro.metrics.export import to_csv, to_csv_columns, write_csv


@dataclass(frozen=True)
class _Row:
    n: int
    value: float


class TestToCsv:
    def test_dataclass_rows(self):
        text = to_csv([_Row(1, 2.5), _Row(2, 3.5)])
        lines = text.strip().splitlines()
        assert lines[0] == "n,value"
        assert lines[1] == "1,2.5"
        assert lines[2] == "2,3.5"

    def test_dict_rows(self):
        text = to_csv([{"a": 1, "b": "x"}])
        assert text.strip().splitlines() == ["a,b", "1,x"]

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            to_csv([])

    def test_inconsistent_fields_rejected(self):
        with pytest.raises(ExperimentError):
            to_csv([{"a": 1}, {"b": 2}])

    def test_unsupported_type_rejected(self):
        with pytest.raises(ExperimentError):
            to_csv([(1, 2)])


class TestToCsvColumns:
    def test_positional_rows(self):
        text = to_csv_columns(["x", "y"], [[1, 2], [3, 4]])
        assert text.strip().splitlines() == ["x,y", "1,2", "3,4"]

    def test_width_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            to_csv_columns(["x"], [[1, 2]])

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            to_csv_columns(["x"], [])


class TestWriteCsv:
    def test_writes_file(self, tmp_path):
        target = write_csv(tmp_path / "sub" / "out.csv", [_Row(1, 2.0)])
        assert target.exists()
        assert target.read_text().startswith("n,value")


class TestBenchArchives:
    def test_figure_csvs_parse(self):
        """The archived figure CSVs round-trip through the csv module."""
        import csv
        import pathlib

        results = pathlib.Path("benchmarks/results")
        for name in ("figure1.csv", "figure2.csv"):
            path = results / name
            if not path.exists():
                pytest.skip(f"{name} not yet generated")
            rows = list(csv.DictReader(path.open()))
            assert rows, name
