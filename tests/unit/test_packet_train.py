"""Packet-train delivery parity: batched sends must be timing-transparent.

``Network.send_fanout`` and ``Network.send_fanout_train`` are pure
mechanical optimizations over per-message ``send`` calls: every logical
message keeps its own ChannelStats accounting and its own FIFO-clamped
arrival time, and every destination handler sees the same messages in
the same order at the same simulated instants.  These tests drive both
paths with identical traffic and require the observable streams to be
**equal**, not merely close.
"""

from __future__ import annotations

import random

import pytest

from repro.net.loss import LossModel
from repro.net.message import Message, fire_train
from repro.net.network import Network
from repro.net.topology import MeshTorus
from repro.params import MachineParams
from repro.sim.kernel import Simulator


def make_net(n=9, loss_model=None, **params):
    sim = Simulator()
    net = Network(sim, MeshTorus(n), MachineParams(**params), loss_model)
    return sim, net


def record_deliveries(sim, net, nodes):
    """Attach recorders; returns {node: [(time, payload, size), ...]}."""
    got = {node: [] for node in nodes}

    def recorder(node):
        return lambda msg: got[node].append((sim.now, msg.payload, msg.size_bytes))

    for node in nodes:
        net.attach(node, recorder(node))
    return got


def stats_snapshot(net):
    s = net.stats
    return {
        "messages": s.messages,
        "bytes": s.bytes,
        "by_kind": dict(s.by_kind),
        "inbound": dict(s.inbound),
        "outbound": dict(s.outbound),
    }


class TestFanoutParity:
    """Satellite: send_fanout must equal one send per target, exactly."""

    def run_per_message(self, payload="p", size=16, warm=None):
        sim, net = make_net()
        got = record_deliveries(sim, net, range(9))
        if warm is not None:
            net.send(Message(src=0, dst=warm[0], kind="warm", size_bytes=warm[1]))
        for dst in range(1, 9):
            net.send(Message(src=0, dst=dst, kind="k", payload=payload, size_bytes=size))
        sim.run()
        return got, stats_snapshot(net)

    def run_fanout(self, payload="p", size=16, warm=None):
        sim, net = make_net()
        got = record_deliveries(sim, net, range(9))
        if warm is not None:
            net.send(Message(src=0, dst=warm[0], kind="warm", size_bytes=warm[1]))
        net.send_fanout(0, tuple(range(1, 9)), "k", payload, size)
        sim.run()
        return got, stats_snapshot(net)

    def test_identical_arrivals_and_stats(self):
        got_a, stats_a = self.run_per_message()
        got_b, stats_b = self.run_fanout()
        assert got_a == got_b
        assert stats_a == stats_b

    def test_fifo_last_arrival_clamp(self):
        """A large in-flight message must clamp the fanout identically."""
        # 4096 bytes to node 1: its serialization dwarfs the 16-byte
        # fanout packet, so the channel (0, 1) clamps the fanout arrival
        # to the large message's arrival while other channels do not.
        warm = (1, 4096)
        got_a, stats_a = self.run_per_message(warm=warm)
        got_b, stats_b = self.run_fanout(warm=warm)
        assert got_a == got_b
        assert stats_a == stats_b
        # The clamp actually engaged: node 1 got both at the same time.
        times_at_1 = [t for t, *_ in got_a[1]]
        assert times_at_1[0] == times_at_1[1]


class TestTrainParity:
    """send_fanout_train == send_fanout per entry, byte for byte."""

    TARGETS = tuple(range(1, 9))

    def run_fanouts(self, payloads, sizes, loss_model=None):
        sim, net = make_net(loss_model=loss_model)
        got = record_deliveries(sim, net, range(9))
        for payload, size in zip(payloads, sizes):
            net.send_fanout(0, self.TARGETS, "k", payload, size)
        sim.run()
        return got, stats_snapshot(net)

    def run_train(self, payloads, sizes, loss_model=None):
        sim, net = make_net(loss_model=loss_model)
        got = record_deliveries(sim, net, range(9))
        net.send_fanout_train(0, self.TARGETS, "k", payloads, sizes)
        sim.run()
        return got, stats_snapshot(net)

    def test_equal_sizes_coalesce_identically(self):
        payloads = [f"p{i}" for i in range(6)]
        sizes = [16] * 6
        got_a, stats_a = self.run_fanouts(payloads, sizes)
        got_b, stats_b = self.run_train(payloads, sizes)
        assert got_a == got_b
        assert stats_a == stats_b

    def test_equal_sizes_use_one_event_per_member(self):
        """The point of the train: k same-size packets, one delivery event."""
        sim, net = make_net()
        events = []
        for node in range(9):
            net.attach(node, lambda msg: events.append(sim.now))
        net.send_fanout_train(0, self.TARGETS, "k", ["p"] * 6, [16] * 6)
        # 8 members x 6 packets = 48 deliveries from only 8 heap entries.
        assert net._queue._live == 8
        sim.run()
        assert len(events) == 48

    def test_mixed_sizes_split_segments_identically(self):
        """A larger mid-train packet forces a later arrival; the smaller
        one behind it clamps to it.  Arrival math must match unbatched."""
        payloads = ["a", "b", "big", "c"]
        sizes = [16, 16, 4096, 16]
        got_a, stats_a = self.run_fanouts(payloads, sizes)
        got_b, stats_b = self.run_train(payloads, sizes)
        assert got_a == got_b
        assert stats_a == stats_b
        # Two distinct arrival instants per member: the pre-big pair and
        # the big+clamped tail.
        for node in self.TARGETS:
            assert len({t for t, *_ in got_a[node]}) == 2

    def test_single_entry_delegates_to_fanout(self):
        got_a, stats_a = self.run_fanouts(["only"], [16])
        got_b, stats_b = self.run_train(["only"], [16])
        assert got_a == got_b
        assert stats_a == stats_b

    def test_loss_model_falls_back_to_per_message_sends(self):
        """With a loss model attached the train path must defer to plain
        sends so per-message drop decisions stay possible."""
        payloads = [f"p{i}" for i in range(4)]
        sizes = [16] * 4

        def lossless():
            return LossModel(0.0, random.Random(7))

        got_a, stats_a = self.run_fanouts(payloads, sizes)
        got_b, stats_b = self.run_train(payloads, sizes, loss_model=lossless())
        assert got_a == got_b
        assert stats_a == stats_b

    def test_delivery_order_is_sequence_order(self):
        got, _ = self.run_train([0, 1, 2, 3, 4], [16] * 5)
        for node in self.TARGETS:
            assert [payload for _, payload, _ in got[node]] == [0, 1, 2, 3, 4]


class TestFireTrain:
    def test_invokes_handler_per_message_in_order(self):
        seen = []
        msgs = tuple(
            Message(src=0, dst=1, kind="k", payload=i) for i in range(3)
        )
        fire_train((seen.append, msgs))
        assert seen == list(msgs)
