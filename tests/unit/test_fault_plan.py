"""Validation and construction tests for declarative fault plans."""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.faults.plan import (
    CRASH,
    DELAY,
    DUPLICATE,
    HEAL,
    PARTITION,
    RESTART,
    FaultEvent,
    FaultPlan,
    crash,
    delay,
    duplicate,
    heal,
    partition,
    restart,
)


class TestFactories:
    def test_each_factory_sets_its_kind(self):
        assert crash(1.0, node=2).kind == CRASH
        assert restart(1.0, node=2).kind == RESTART
        assert partition(1.0, nodes=(1, 2)).kind == PARTITION
        assert heal(1.0, nodes=(1, 2)).kind == HEAL
        assert delay(1.0, extra=1e-6).kind == DELAY
        assert duplicate(1.0).kind == DUPLICATE

    def test_crash_by_holder(self):
        event = crash(1.0, holder_of="L")
        assert event.node is None
        assert event.holder_of == "L"

    def test_duplicate_defaults_to_apply_stream(self):
        assert duplicate(1.0).message_kinds == ("gwc.apply",)


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(FaultError, match="time must be >= 0"):
            crash(-1.0, node=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultEvent(time=0.0, kind="meteor")

    def test_crash_needs_exactly_one_target(self):
        with pytest.raises(FaultError, match="exactly one"):
            crash(1.0)
        with pytest.raises(FaultError, match="exactly one"):
            crash(1.0, node=1, holder_of="L")

    def test_restart_needs_node(self):
        with pytest.raises(FaultError, match="needs node="):
            FaultEvent(time=0.0, kind=RESTART)

    def test_partition_needs_nodes(self):
        with pytest.raises(FaultError, match="non-empty nodes"):
            partition(1.0, nodes=())

    def test_partition_duplicate_nodes_rejected(self):
        with pytest.raises(FaultError, match="duplicate nodes"):
            partition(1.0, nodes=(1, 1))

    def test_until_must_follow_time(self):
        with pytest.raises(FaultError, match="must be after"):
            partition(2.0, nodes=(1,), until=2.0)

    def test_delay_needs_positive_extra(self):
        with pytest.raises(FaultError, match="extra_delay"):
            delay(1.0, extra=0.0)

    def test_delay_negative_jitter_rejected(self):
        with pytest.raises(FaultError, match="jitter"):
            delay(1.0, extra=1e-6, jitter=-0.1)

    def test_probability_bounds(self):
        with pytest.raises(FaultError, match="probability"):
            delay(1.0, extra=1e-6, probability=0.0)
        with pytest.raises(FaultError, match="probability"):
            duplicate(1.0, probability=1.5)

    def test_duplicate_needs_two_copies(self):
        with pytest.raises(FaultError, match="copies"):
            duplicate(1.0, copies=1)


class TestPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            [restart(5.0, node=1), crash(1.0, node=1), heal(3.0, nodes=(2,))],
            seed=9,
        )
        assert [e.time for e in plan.events] == [1.0, 3.0, 5.0]
        assert plan.seed == 9
        assert len(plan) == 3

    def test_plan_is_immutable(self):
        plan = FaultPlan([crash(1.0, node=0)])
        with pytest.raises(AttributeError):
            plan.seed = 1  # type: ignore[misc]

    def test_validate_accepts_in_range_nodes(self):
        plan = FaultPlan([crash(1.0, node=3), partition(2.0, nodes=(0, 1))])
        plan.validate(4)

    def test_validate_rejects_unknown_node(self):
        plan = FaultPlan([crash(1.0, node=7)])
        with pytest.raises(FaultError, match="nodes 0..3"):
            plan.validate(4)

    def test_validate_rejects_unknown_partition_member(self):
        plan = FaultPlan([partition(1.0, nodes=(1, 9))])
        with pytest.raises(FaultError, match=r"unknown node\(s\) \[9\]"):
            plan.validate(4)

    def test_validate_rejects_total_isolation(self):
        plan = FaultPlan([partition(1.0, nodes=(0, 1, 2))])
        with pytest.raises(FaultError, match="isolates every node"):
            plan.validate(3)
