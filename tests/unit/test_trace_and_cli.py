"""Unit tests for the tracer, RNG streams, and the CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.sim.rng import RngStreams
from repro.sim.trace import NullTracer, Tracer


class TestTracer:
    def test_records_in_order(self):
        tracer = Tracer()
        tracer.record(1.0, "a", x=1)
        tracer.record(2.0, "b", y=2)
        assert len(tracer) == 2
        assert [r.category for r in tracer] == ["a", "b"]

    def test_filter_by_category(self):
        tracer = Tracer()
        tracer.record(1.0, "a", n=1)
        tracer.record(2.0, "b", n=2)
        tracer.record(3.0, "a", n=3)
        assert [r.detail["n"] for r in tracer.filter("a")] == [1, 3]

    def test_category_allowlist(self):
        tracer = Tracer(categories={"keep"})
        tracer.record(1.0, "keep", x=1)
        tracer.record(2.0, "drop", x=2)
        assert len(tracer) == 1

    def test_dump_renders_text(self):
        tracer = Tracer()
        tracer.record(1e-6, "cat", key="value")
        text = tracer.dump()
        assert "cat" in text
        assert "key=value" in text

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        assert not tracer.enabled
        tracer.record(1.0, "x", a=1)
        assert len(tracer) == 0


class TestRngStreams:
    def test_same_seed_same_sequence(self):
        a = RngStreams(5).stream("s")
        b = RngStreams(5).stream("s")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_independent(self):
        streams = RngStreams(5)
        first = streams.stream("a").random()
        # Creating and using other streams must not perturb "a".
        again = RngStreams(5)
        for name in ("z", "y", "x"):
            again.stream(name).random()
        assert again.stream("a").random() == first

    def test_stream_identity_cached(self):
        streams = RngStreams(0)
        assert streams.stream("a") is streams.stream("a")

    def test_fork_independent_of_parent(self):
        parent = RngStreams(1)
        child = parent.fork("c")
        assert child.stream("a").random() != parent.stream("a").random()

    def test_fork_deterministic(self):
        a = RngStreams(1).fork("c").stream("s").random()
        b = RngStreams(1).fork("c").stream("s").random()
        assert a == b


class TestCli:
    def test_parser_knows_all_commands(self):
        parser = build_parser()
        for command in ("figure1", "figure2", "figure8", "figure7",
                        "ablations", "systems", "chaos"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_systems_command(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "gwc_optimistic" in out
        assert "entry" in out

    def test_figure1_command_passes_checks(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "FAIL" not in out

    def test_figure7_command(self, capsys):
        assert main(["figure7"]) == 0
        out = capsys.readouterr().out
        assert "rollback" in out

    def test_figure8_command_custom_sizes(self, capsys):
        assert main(["figure8", "--sizes", "2,4", "--data", "32"]) == 0
        out = capsys.readouterr().out
        assert "mutex methods" in out

    def test_figure2_command_custom_sizes(self, capsys):
        assert main(["figure2", "--sizes", "3,5", "--tasks", "32"]) == 0
        out = capsys.readouterr().out
        assert "task management" in out

    def test_chaos_smoke_command(self, capsys, tmp_path):
        csv_path = tmp_path / "chaos.csv"
        assert main(["chaos", "--smoke", "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "Chaos soak" in out
        assert "crash_holder" in out
        assert "9/9 run(s) ok" in out
        assert csv_path.read_text().startswith("system,workload,scenario")

    def test_chaos_single_scenario(self, capsys):
        assert main(
            ["chaos", "--systems", "gwc", "--scenario", "partition"]
        ) == 0
        out = capsys.readouterr().out
        assert "1/1 run(s) ok" in out

    def test_chaos_no_recovery_reports_stall_and_fails(self, capsys):
        assert main(
            [
                "chaos",
                "--systems",
                "gwc",
                "--scenario",
                "crash_holder",
                "--no-recovery",
            ]
        ) == 1
        out = capsys.readouterr().out
        assert "STALL" in out
        assert "0/1 run(s) ok" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_reproduce_command_digest(self, capsys):
        # Tiny custom scale via the quick defaults; the digest must end
        # with every expectation holding.
        assert main(["reproduce"]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCTION DIGEST: every paper expectation held" in out
        assert "FIGURE 1" in out and "FIGURE 8" in out
