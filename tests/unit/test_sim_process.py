"""Unit tests for generator-based simulated processes and waiters."""

from __future__ import annotations

import pytest

from repro.errors import ProcessError, SimulationError
from repro.sim.kernel import Simulator
from repro.sim.waiters import Future, Signal


class TestProcessBasics:
    def test_sleep_advances_clock(self):
        sim = Simulator()
        log: list[float] = []

        def proc():
            yield 1.0
            log.append(sim.now)
            yield 2.5
            log.append(sim.now)

        sim.spawn(proc(), name="p")
        sim.run()
        assert log == [1.0, 3.5]

    def test_return_value_captured(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return "result"

        p = sim.spawn(proc(), name="p")
        sim.run()
        assert p.finished
        assert p.result == "result"

    def test_yield_none_reschedules_immediately(self):
        sim = Simulator()
        order: list[str] = []

        def a():
            order.append("a1")
            yield
            order.append("a2")

        def b():
            order.append("b1")
            yield
            order.append("b2")

        sim.spawn(a(), name="a")
        sim.spawn(b(), name="b")
        sim.run()
        # Interleaved: both first halves run before either second half.
        assert order == ["a1", "b1", "a2", "b2"]
        assert sim.now == 0.0

    def test_negative_delay_rejected(self):
        sim = Simulator()

        def proc():
            yield -1.0

        sim.spawn(proc(), name="p")
        with pytest.raises(ProcessError, match="negative delay"):
            sim.run()

    def test_bad_yield_value_rejected(self):
        sim = Simulator()

        def proc():
            yield "nonsense"

        sim.spawn(proc(), name="p")
        with pytest.raises(ProcessError, match="unsupported"):
            sim.run()

    def test_exceptions_propagate_out_of_run(self):
        sim = Simulator()

        def proc():
            yield 1.0
            raise ValueError("model bug")

        sim.spawn(proc(), name="p")
        with pytest.raises(ValueError, match="model bug"):
            sim.run()

    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(ProcessError):
            sim.spawn(lambda: None, name="p")  # type: ignore[arg-type]

    def test_check_quiescent_flags_blocked_process(self):
        sim = Simulator()
        never = Future(name="never")

        def proc():
            yield never

        sim.spawn(proc(), name="stuck")
        sim.run()
        with pytest.raises(SimulationError, match="stuck"):
            sim.check_quiescent()


class TestFutureWaiting:
    def test_wait_receives_resolved_value(self):
        sim = Simulator()
        future = Future()
        got: list[object] = []

        def waiter():
            value = yield future
            got.append((sim.now, value))

        sim.spawn(waiter(), name="w")
        sim.schedule(2.0, lambda: future.resolve("payload"))
        sim.run()
        assert got == [(2.0, "payload")]

    def test_wait_on_already_resolved_future(self):
        sim = Simulator()
        future = Future()
        future.resolve(7)
        got: list[object] = []

        def waiter():
            value = yield future
            got.append(value)

        sim.spawn(waiter(), name="w")
        sim.run()
        assert got == [7]

    def test_double_resolve_rejected(self):
        future = Future()
        future.resolve(1)
        with pytest.raises(SimulationError, match="twice"):
            future.resolve(2)

    def test_value_before_resolve_rejected(self):
        with pytest.raises(SimulationError):
            Future().value

    def test_many_waiters_all_wake(self):
        sim = Simulator()
        future = Future()
        got: list[int] = []

        def waiter(i):
            yield future
            got.append(i)

        for i in range(5):
            sim.spawn(waiter(i), name=f"w{i}")
        sim.schedule(1.0, lambda: future.resolve(None))
        sim.run()
        assert sorted(got) == [0, 1, 2, 3, 4]


class TestSignalWaiting:
    def test_fire_wakes_current_waiters_only(self):
        sim = Simulator()
        signal = Signal()
        got: list[tuple[str, object]] = []

        def early():
            value = yield signal
            got.append(("early", value))

        sim.spawn(early(), name="early")
        sim.schedule(1.0, lambda: signal.fire("first"))
        sim.schedule(2.0, lambda: signal.fire("second"))
        sim.run()
        assert got == [("early", "first")]
        assert signal.fire_count == 2

    def test_re_wait_sees_next_fire(self):
        sim = Simulator()
        signal = Signal()
        got: list[object] = []

        def loop():
            for _ in range(3):
                value = yield signal
                got.append(value)

        sim.spawn(loop(), name="loop")
        for i in range(1, 4):
            sim.schedule(float(i), lambda i=i: signal.fire(i))
        sim.run()
        assert got == [1, 2, 3]

    def test_remove_callback(self):
        signal = Signal()
        seen: list[object] = []
        cb = seen.append
        signal.add_callback(cb)
        assert signal.remove_callback(cb) is True
        assert signal.remove_callback(cb) is False
        signal.fire("x")
        assert seen == []

    def test_join_process(self):
        sim = Simulator()
        got: list[object] = []

        def child():
            yield 2.0
            return "child-done"

        def parent():
            result = yield sim.spawn(child(), name="child")
            got.append((sim.now, result))

        sim.spawn(parent(), name="parent")
        sim.run()
        assert got == [(2.0, "child-done")]
