"""Unit tests for Figure-1-style timeline rendering."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.metrics.timeline import render_timeline
from repro.workloads.contention import ContentionConfig, run_contention


class TestTimelineFromContention:
    @pytest.fixture(scope="class")
    def timeline(self):
        result = run_contention(ContentionConfig(system="gwc", record_timeline=True))
        return result.extra["timeline"]

    def test_one_lane_per_cpu(self, timeline):
        for cpu in ("cpu0", "cpu1", "cpu2"):
            assert cpu in timeline

    def test_lock_hold_overlays_present(self, timeline):
        assert timeline.count("lock held") == 3

    def test_busy_and_idle_marks(self, timeline):
        assert "#" in timeline
        assert "." in timeline

    def test_legend(self, timeline):
        assert "legend:" in timeline


class TestTimelineSemantics:
    def test_optimistic_rollback_shows_wasted_time(self):
        result = run_contention(
            ContentionConfig(system="gwc_optimistic", record_timeline=True)
        )
        if result.counter("opt.rollbacks"):
            assert "x" in result.extra["timeline"]

    def test_holds_are_disjoint_in_time(self):
        """No column may show two CPUs holding the lock (visual mutual
        exclusion)."""
        result = run_contention(ContentionConfig(system="gwc", record_timeline=True))
        lines = result.extra["timeline"].splitlines()
        hold_rows = [
            line.split("|")[1]
            for line in lines
            if line.strip().endswith("lock held")
        ]
        assert len(hold_rows) == 3
        width = len(hold_rows[0])
        for col in range(width):
            holders = sum(1 for row in hold_rows if row[col] == "=")
            assert holders <= 1, f"column {col} shows {holders} holders"

    def test_requires_span_recording(self):
        from repro.core.machine import DSMMachine

        machine = DSMMachine(n_nodes=1)

        def proc():
            yield 1e-6

        machine.spawn(proc(), name="p")
        machine.run()
        with pytest.raises(ExperimentError, match="span recording"):
            render_timeline(machine)

    def test_requires_completed_run(self):
        from repro.core.machine import DSMMachine

        machine = DSMMachine(n_nodes=1)
        machine.enable_span_recording()
        with pytest.raises(ExperimentError, match="run the machine"):
            render_timeline(machine)
