"""Unit tests for the machine cost parameters."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.params import PAPER_PARAMS, MachineParams


class TestPaperParams:
    def test_paper_constants(self):
        assert PAPER_PARAMS.cpu_flops == 33e6
        assert PAPER_PARAMS.memory_bandwidth == 400e6
        assert PAPER_PARAMS.hop_latency == 200e-9
        assert PAPER_PARAMS.link_bandwidth_bits == 1e9

    def test_link_bandwidth_bytes(self):
        assert PAPER_PARAMS.link_bandwidth == 1e9 / 8

    def test_compute_time(self):
        assert PAPER_PARAMS.compute_time(33e6) == pytest.approx(1.0)
        assert PAPER_PARAMS.compute_time(0) == 0.0

    def test_memory_time(self):
        assert PAPER_PARAMS.memory_time(400e6) == pytest.approx(1.0)

    def test_wire_time_composition(self):
        # 3 hops of 200ns plus 125 bytes at 125 MB/s = 600ns + 1us.
        assert PAPER_PARAMS.wire_time(125, 3) == pytest.approx(600e-9 + 1e-6)

    def test_wire_time_zero_hops(self):
        assert PAPER_PARAMS.wire_time(125, 0) == pytest.approx(1e-6)

    def test_packet_time_uses_packet_bytes(self):
        params = MachineParams(packet_bytes=125)
        assert params.packet_time(1) == pytest.approx(200e-9 + 1e-6)


class TestZeroDelay:
    def test_zero_delay_removes_network_costs(self):
        zero = PAPER_PARAMS.zero_delay()
        assert zero.wire_time(10_000, 50) == 0.0

    def test_zero_delay_keeps_compute_costs(self):
        zero = PAPER_PARAMS.zero_delay()
        assert zero.compute_time(33e6) == pytest.approx(1.0)
        assert zero.memory_time(400e6) == pytest.approx(1.0)


class TestValidation:
    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            MachineParams(cpu_flops=0)
        with pytest.raises(ExperimentError):
            MachineParams(memory_bandwidth=-1)
        with pytest.raises(ExperimentError):
            MachineParams(hop_latency=-1e-9)
        with pytest.raises(ExperimentError):
            MachineParams(packet_bytes=0)

    def test_negative_work_rejected(self):
        with pytest.raises(ExperimentError):
            PAPER_PARAMS.compute_time(-1)
        with pytest.raises(ExperimentError):
            PAPER_PARAMS.memory_time(-1)
        with pytest.raises(ExperimentError):
            PAPER_PARAMS.wire_time(-1, 0)
        with pytest.raises(ExperimentError):
            PAPER_PARAMS.wire_time(1, -1)

    def test_frozen(self):
        with pytest.raises(Exception):
            PAPER_PARAMS.cpu_flops = 1  # type: ignore[misc]
