"""Unit tests for network topologies."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.net.topology import (
    FullyConnected,
    MeshTorus,
    Ring,
    Star,
    make_topology,
)


class TestMeshTorus:
    def test_perfect_square_grid(self):
        torus = MeshTorus(16)
        assert (torus.rows, torus.cols) == (4, 4)

    def test_paper_sizes_stay_near_square(self):
        for n in (3, 5, 9, 17, 33, 65, 129):
            torus = MeshTorus(n)
            assert torus.rows * torus.cols >= n
            assert torus.cols - torus.rows <= max(2, torus.rows)

    def test_hops_zero_to_self(self):
        torus = MeshTorus(16)
        for node in range(16):
            assert torus.hops(node, node) == 0

    def test_hops_symmetric(self):
        torus = MeshTorus(12)
        for a in range(12):
            for b in range(12):
                assert torus.hops(a, b) == torus.hops(b, a)

    def test_wraparound_shortens_paths(self):
        torus = MeshTorus(16)  # 4x4
        # Nodes 0 and 3 are on the same row, 3 columns apart; the torus
        # wraps so the distance is 1.
        assert torus.hops(0, 3) == 1

    def test_manhattan_distance_on_grid(self):
        torus = MeshTorus(16)  # 4x4
        assert torus.hops(0, 5) == 2  # one row + one column

    def test_neighbors_are_at_distance_one(self):
        torus = MeshTorus(16)
        for node in range(16):
            for other in torus.neighbors(node):
                assert torus.hops(node, other) == 1

    def test_neighbors_exclude_missing_processors(self):
        torus = MeshTorus(5)  # 2x3 grid, position 5 is a switch only
        for node in range(5):
            assert all(other < 5 for other in torus.neighbors(node))

    def test_triangle_inequality(self):
        torus = MeshTorus(9)
        for a in range(9):
            for b in range(9):
                for c in range(9):
                    assert torus.hops(a, c) <= torus.hops(a, b) + torus.hops(b, c)

    def test_out_of_range_rejected(self):
        with pytest.raises(TopologyError):
            MeshTorus(4).hops(0, 4)


class TestRing:
    def test_distance_wraps(self):
        ring = Ring(10)
        assert ring.hops(0, 9) == 1
        assert ring.hops(0, 5) == 5
        assert ring.hops(2, 8) == 4

    def test_neighbors(self):
        ring = Ring(5)
        assert set(ring.neighbors(0)) == {4, 1}

    def test_single_node(self):
        ring = Ring(1)
        assert ring.neighbors(0) == ()
        assert ring.hops(0, 0) == 0

    def test_two_nodes_single_neighbor(self):
        ring = Ring(2)
        assert ring.neighbors(0) == (1,)


class TestStar:
    def test_distances(self):
        star = Star(5)
        assert star.hops(0, 3) == 1
        assert star.hops(3, 0) == 1
        assert star.hops(2, 4) == 2
        assert star.hops(2, 2) == 0

    def test_hub_neighbors_everyone(self):
        star = Star(4)
        assert set(star.neighbors(0)) == {1, 2, 3}
        assert star.neighbors(2) == (0,)


class TestFullyConnected:
    def test_all_distances_one(self):
        full = FullyConnected(6)
        for a in range(6):
            for b in range(6):
                assert full.hops(a, b) == (0 if a == b else 1)


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_topology("mesh_torus", 4), MeshTorus)
        assert isinstance(make_topology("ring", 4), Ring)
        assert isinstance(make_topology("star", 4), Star)
        assert isinstance(make_topology("fully_connected", 4), FullyConnected)

    def test_unknown_kind_rejected(self):
        with pytest.raises(TopologyError, match="unknown topology"):
            make_topology("hypercube", 4)

    def test_zero_nodes_rejected(self):
        with pytest.raises(TopologyError):
            MeshTorus(0)

    def test_diameter(self):
        assert Ring(8).diameter() == 4
        assert Star(5).diameter() == 2
        assert FullyConnected(3).diameter() == 1


class TestDiameterCache:
    def test_cached_diameter_matches_uncached(self):
        for topology in (MeshTorus(9), Ring(7), Star(6)):
            first = topology.diameter()
            assert first == topology._diameter_uncached()
            # Second call hits the cache and must agree.
            assert topology.diameter() == first
