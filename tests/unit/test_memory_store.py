"""Unit tests for local stores and variable/lock declarations."""

from __future__ import annotations

import pytest

from repro.errors import LockError, MemoryError_, UnknownVariableError
from repro.memory.store import LocalStore
from repro.memory.varspace import (
    FREE_VALUE,
    LockDecl,
    VarDecl,
    grant_value,
    holder_of,
    request_value,
    requester_of,
)
from repro.sim.kernel import Simulator


class TestLockValueEncoding:
    def test_request_and_grant_are_distinct(self):
        for node in range(5):
            assert request_value(node) < 0
            assert grant_value(node) > 0
            assert request_value(node) == -grant_value(node)

    def test_zero_node_id_encodes_cleanly(self):
        assert request_value(0) == -1
        assert grant_value(0) == 1

    def test_free_value_never_collides_with_requests(self):
        for node in range(10_000):
            assert request_value(node) != FREE_VALUE

    def test_holder_of(self):
        assert holder_of(grant_value(3)) == 3
        assert holder_of(request_value(3)) is None
        assert holder_of(FREE_VALUE) is None

    def test_requester_of(self):
        assert requester_of(request_value(7)) == 7
        assert requester_of(grant_value(7)) is None
        assert requester_of(FREE_VALUE) is None

    def test_negative_node_rejected(self):
        with pytest.raises(LockError):
            request_value(-1)
        with pytest.raises(LockError):
            grant_value(-2)


class TestVarDecl:
    def test_mutex_flag(self):
        plain = VarDecl(name="x", group="g")
        guarded = VarDecl(name="y", group="g", mutex_lock="L")
        assert not plain.is_mutex_data
        assert guarded.is_mutex_data

    def test_lock_decl_rejects_duplicate_protects(self):
        with pytest.raises(MemoryError_):
            LockDecl(name="L", group="g", protects=("a", "a"))


class TestLocalStore:
    def test_read_write_roundtrip(self):
        store = LocalStore(0)
        store.declare("x", 10)
        assert store.read("x") == 10
        store.write("x", 20)
        assert store.read("x") == 20
        assert store.write_counts["x"] == 1

    def test_undeclared_read_rejected(self):
        with pytest.raises(UnknownVariableError):
            LocalStore(0).read("ghost")

    def test_undeclared_write_rejected(self):
        with pytest.raises(UnknownVariableError):
            LocalStore(0).write("ghost", 1)

    def test_signal_fires_on_write(self):
        store = LocalStore(0)
        store.declare("x", 0)
        seen = []
        store.signal_for("x").add_callback(seen.append)
        store.write("x", 5)
        assert seen == [5]

    def test_snapshot_restore_roundtrip(self):
        store = LocalStore(0)
        store.declare("a", 1)
        store.declare("b", 2)
        saved = store.snapshot(("a", "b"))
        store.write("a", 100)
        store.write("b", 200)
        store.restore(saved)
        assert store.read("a") == 1
        assert store.read("b") == 2

    def test_wait_until_immediate_when_predicate_holds(self):
        sim = Simulator()
        store = LocalStore(0)
        store.declare("x", 5)
        got = []

        def proc():
            value = yield from store.wait_until("x", lambda v: v >= 5)
            got.append((sim.now, value))

        sim.spawn(proc(), name="p")
        sim.run()
        assert got == [(0.0, 5)]

    def test_wait_until_wakes_on_satisfying_write(self):
        sim = Simulator()
        store = LocalStore(0)
        store.declare("x", 0)
        got = []

        def proc():
            value = yield from store.wait_until("x", lambda v: v == 3)
            got.append((sim.now, value))

        sim.spawn(proc(), name="p")
        sim.schedule(1.0, lambda: store.write("x", 1))
        sim.schedule(2.0, lambda: store.write("x", 3))
        sim.run()
        assert got == [(2.0, 3)]

    def test_wait_until_rereads_after_burst_of_writes(self):
        """Several writes landing before the waiter resumes must not
        leave it acting on a stale intermediate value."""
        sim = Simulator()
        store = LocalStore(0)
        store.declare("x", 0)
        got = []

        def burst():
            store.write("x", 1)  # wakes the waiter...
            store.write("x", 9)  # ...but this lands first

        def proc():
            value = yield from store.wait_until("x", lambda v: v > 0)
            got.append(value)

        sim.spawn(proc(), name="p")
        sim.schedule(1.0, burst)
        sim.run()
        assert got == [9]
