"""Unit tests for multi-seed replication statistics."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.replication import replicate, replicate_many, summarize


class TestSummarize:
    def test_mean_and_std(self):
        metric = summarize("m", [1.0, 2.0, 3.0])
        assert metric.mean == pytest.approx(2.0)
        assert metric.std == pytest.approx(1.0)
        assert metric.n == 3

    def test_ci_contains_mean(self):
        metric = summarize("m", [1.0, 2.0, 3.0, 4.0])
        assert metric.ci_low < metric.mean < metric.ci_high

    def test_ci_uses_t_distribution(self):
        # n=3, dof=2: t = 4.30; half width = 4.30 * 1.0 / sqrt(3)
        metric = summarize("m", [1.0, 2.0, 3.0])
        assert metric.ci_half_width == pytest.approx(4.30 * 1.0 / 3**0.5, rel=0.01)

    def test_single_value_collapses(self):
        metric = summarize("m", [5.0])
        assert metric.mean == 5.0
        assert metric.ci_low == metric.ci_high == 5.0

    def test_identical_values_zero_width(self):
        metric = summarize("m", [2.0] * 6)
        assert metric.std == 0.0
        assert metric.ci_half_width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            summarize("m", [])

    def test_str_rendering(self):
        text = str(summarize("speedup", [1.0, 2.0]))
        assert "speedup" in text
        assert "n=2" in text


class TestReplicate:
    def test_calls_run_per_seed(self):
        seen = []

        def run(seed: int) -> float:
            seen.append(seed)
            return float(seed)

        metric = replicate(run, seeds=range(4), name="x")
        assert seen == [0, 1, 2, 3]
        assert metric.mean == pytest.approx(1.5)

    def test_replicate_many(self):
        def run(seed: int) -> dict[str, float]:
            return {"a": float(seed), "b": 2.0}

        metrics = replicate_many(run, seeds=range(3))
        assert metrics["a"].mean == pytest.approx(1.0)
        assert metrics["b"].std == 0.0


class TestDeterminismViaReplication:
    def test_deterministic_workload_has_zero_variance(self):
        """Same seed -> identical simulation; this doubles as the
        library's determinism regression check."""
        from repro.workloads.counter import CounterConfig, run_counter

        def run(_seed_unused: int) -> float:
            return run_counter(
                CounterConfig(system="gwc_optimistic", n_nodes=4,
                              increments_per_node=4, seed=7)
            ).elapsed

        metric = replicate(run, seeds=range(3), name="elapsed")
        # Identical runs up to floating-point mean round-off.
        assert metric.std <= 1e-12 * metric.mean

    def test_randomized_workload_varies_across_seeds(self):
        from repro.workloads.synthetic import SyntheticConfig, run_synthetic

        def run(seed: int) -> float:
            return run_synthetic(
                SyntheticConfig(n_nodes=4, sections_per_node=5, seed=seed)
            ).elapsed

        metric = replicate(run, seeds=range(4), name="elapsed")
        assert metric.std > 0.0
        assert metric.ci_low < metric.mean < metric.ci_high
