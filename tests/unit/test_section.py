"""Unit tests for Section declarations and rollback snapshots."""

from __future__ import annotations

import pytest

from repro.core.machine import DSMMachine
from repro.core.section import (
    Section,
    SectionContext,
    restore_from_rollback,
    snapshot_for_rollback,
)
from repro.errors import RollbackError
from repro.sim.waiters import Signal


def make_node():
    machine = DSMMachine(n_nodes=1)
    machine.create_group("g")
    machine.declare_variable("g", "a", 1)
    machine.declare_variable("g", "b", 2)
    return machine, machine.nodes[0]


def dummy_body(ctx):
    yield from ctx.compute(0.0)


class TestSectionDeclaration:
    def test_save_set_deduplicates(self):
        section = Section(
            lock="L",
            body=dummy_body,
            shared_reads=("a", "b"),
            shared_writes=("b", "a"),
        )
        assert sorted(section.save_set) == ["a", "b"]
        assert len(section.save_set) == 2

    def test_save_bytes(self):
        section = Section(
            lock="L",
            body=dummy_body,
            shared_reads=("a",),
            shared_writes=("b",),
            local_vars=("x",),
        )
        assert section.save_bytes() == 8 * 3


class TestSnapshotRestore:
    def test_roundtrip_shared_and_locals(self):
        machine, node = make_node()
        node.locals["x"] = "scratch"
        section = Section(
            lock="L",
            body=dummy_body,
            shared_reads=("a",),
            shared_writes=("b",),
            local_vars=("x",),
        )
        saved = snapshot_for_rollback(node, section)
        node.store.write("a", 100)
        node.store.write("b", 200)
        node.locals["x"] = "clobbered"
        restore_from_rollback(node, section, saved)
        assert node.store.read("a") == 1
        assert node.store.read("b") == 2
        assert node.locals["x"] == "scratch"

    def test_restore_rejects_incomplete_snapshot(self):
        machine, node = make_node()
        section = Section(lock="L", body=dummy_body, shared_writes=("a",))
        with pytest.raises(RollbackError):
            restore_from_rollback(node, section, {})

    def test_missing_local_in_snapshot_rejected(self):
        machine, node = make_node()
        section = Section(lock="L", body=dummy_body, local_vars=("x",))
        with pytest.raises(RollbackError):
            restore_from_rollback(node, section, {})


class TestSectionContext:
    def test_reads_and_writes_flow_through(self):
        machine, node = make_node()
        writes = []
        ctx = SectionContext(node, write_through=lambda v, x: writes.append((v, x)))
        assert ctx.read("a") == 1
        ctx.write("b", 5)
        assert writes == [("b", 5)]

    def test_locals(self):
        machine, node = make_node()
        ctx = SectionContext(node, write_through=lambda v, x: None)
        assert ctx.local("missing", "default") == "default"
        ctx.set_local("k", 9)
        assert ctx.local("k") == 9
        assert node.locals["k"] == 9

    def test_write_after_abort_rejected(self):
        machine, node = make_node()
        abort = Signal()
        ctx = SectionContext(node, write_through=lambda v, x: None, abort=abort)
        abort.fire(None)
        assert ctx.aborted
        with pytest.raises(RollbackError):
            ctx.write("b", 1)
        with pytest.raises(RollbackError):
            ctx.set_local("k", 1)

    def test_compute_after_abort_is_free(self):
        machine, node = make_node()
        abort = Signal()
        ctx = SectionContext(node, write_through=lambda v, x: None, abort=abort)
        abort.fire(None)
        done = []

        def proc():
            spent = yield from ctx.compute(100.0)
            done.append(spent)

        machine.spawn(proc(), name="p")
        machine.run()
        assert done == [0.0]
        assert machine.sim.now == 0.0

    def test_rmw_observations_buffered(self):
        machine, node = make_node()
        ctx = SectionContext(node, write_through=lambda v, x: None)
        ctx.observe_rmw("a", 1, 2)
        ctx.observe_rmw("a", 2, 3)
        assert ctx.rmw_observations == [("a", 1, 2), ("a", 2, 3)]

    def test_elapsed_accumulates(self):
        machine, node = make_node()
        ctx = SectionContext(node, write_through=lambda v, x: None)

        def proc():
            yield from ctx.compute(1e-6)
            yield from ctx.compute(2e-6)

        machine.spawn(proc(), name="p")
        machine.run()
        assert ctx.elapsed == pytest.approx(3e-6)
