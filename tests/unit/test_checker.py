"""Unit tests for the mutual-exclusion / serializability checker."""

from __future__ import annotations

import pytest

from repro.consistency.checker import MutualExclusionChecker
from repro.errors import ConsistencyError


class TestOccupancy:
    def test_sequential_sections_pass(self):
        checker = MutualExclusionChecker()
        checker.enter("L", 0, 1.0)
        checker.exit("L", 0, 2.0)
        checker.enter("L", 1, 3.0)
        checker.exit("L", 1, 4.0)
        checker.verify_no_occupancy()
        assert len(checker.spans) == 2

    def test_overlap_detected(self):
        checker = MutualExclusionChecker()
        checker.enter("L", 0, 1.0)
        with pytest.raises(ConsistencyError, match="mutual exclusion violated"):
            checker.enter("L", 1, 1.5)

    def test_different_locks_do_not_conflict(self):
        checker = MutualExclusionChecker()
        checker.enter("L1", 0, 1.0)
        checker.enter("L2", 1, 1.0)
        checker.exit("L1", 0, 2.0)
        checker.exit("L2", 1, 2.0)
        checker.verify_no_occupancy()

    def test_exit_without_enter_rejected(self):
        checker = MutualExclusionChecker()
        with pytest.raises(ConsistencyError, match="without a matching enter"):
            checker.exit("L", 0, 1.0)

    def test_exit_by_wrong_node_rejected(self):
        checker = MutualExclusionChecker()
        checker.enter("L", 0, 1.0)
        with pytest.raises(ConsistencyError):
            checker.exit("L", 1, 2.0)

    def test_unclosed_section_detected(self):
        checker = MutualExclusionChecker()
        checker.enter("L", 0, 1.0)
        with pytest.raises(ConsistencyError, match="still occupied"):
            checker.verify_no_occupancy()

    def test_occupancy_of_filters_by_lock(self):
        checker = MutualExclusionChecker()
        checker.enter("L1", 0, 1.0)
        checker.exit("L1", 0, 2.0)
        checker.enter("L2", 0, 3.0)
        checker.exit("L2", 0, 4.0)
        assert len(checker.occupancy_of("L1")) == 1
        assert checker.occupancy_of("L1")[0].lock == "L1"


class TestRmwChain:
    def test_unbroken_chain_passes(self):
        checker = MutualExclusionChecker()
        for i in range(5):
            checker.observe_rmw("c", i, i + 1)
        checker.verify_chain("c", 0)

    def test_lost_update_detected(self):
        checker = MutualExclusionChecker()
        checker.observe_rmw("c", 0, 1)
        checker.observe_rmw("c", 0, 1)  # read a stale 0: lost update
        with pytest.raises(ConsistencyError, match="lost update"):
            checker.verify_chain("c", 0)

    def test_wrong_initial_detected(self):
        checker = MutualExclusionChecker()
        checker.observe_rmw("c", 5, 6)
        with pytest.raises(ConsistencyError):
            checker.verify_chain("c", 0)

    def test_empty_chain_passes(self):
        MutualExclusionChecker().verify_chain("never_touched", 0)

    def test_chains_are_per_counter(self):
        checker = MutualExclusionChecker()
        checker.observe_rmw("a", 0, 1)
        checker.observe_rmw("b", 0, 10)
        checker.verify_chain("a", 0)
        checker.verify_chain("b", 0)
