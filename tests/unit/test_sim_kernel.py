"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.event import (
    EventQueue,
    PRIORITY_LAZY,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
)
from repro.sim.kernel import Simulator


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired: list[str] = []
        queue.push(3.0, lambda: fired.append("c"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(2.0, lambda: fired.append("b"))
        while queue:
            queue.pop().fn()
        assert fired == ["a", "b", "c"]

    def test_same_time_pops_in_schedule_order(self):
        queue = EventQueue()
        fired: list[int] = []
        for i in range(10):
            queue.push(1.0, lambda i=i: fired.append(i))
        while queue:
            queue.pop().fn()
        assert fired == list(range(10))

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        fired: list[str] = []
        queue.push(1.0, lambda: fired.append("normal"), PRIORITY_NORMAL)
        queue.push(1.0, lambda: fired.append("urgent"), PRIORITY_URGENT)
        queue.push(1.0, lambda: fired.append("lazy"), PRIORITY_LAZY)
        while queue:
            queue.pop().fn()
        assert fired == ["urgent", "normal", "lazy"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired: list[str] = []
        event = queue.push(1.0, lambda: fired.append("cancelled"))
        queue.push(2.0, lambda: fired.append("kept"))
        event.cancel()
        queue.note_cancelled()
        assert len(queue) == 1
        while queue:
            queue.pop().fn()
        assert fired == ["kept"]

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.peek_time() == 2.0

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(float("nan"), lambda: None)


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_and_run(self):
        sim = Simulator()
        times: list[float] = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.schedule(0.5, lambda: times.append(sim.now))
        end = sim.run()
        assert times == [0.5, 1.5]
        assert end == 1.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(0.5, lambda: None)

    def test_run_until_stops_clock_at_until(self):
        sim = Simulator()
        fired: list[float] = []
        sim.schedule(1.0, lambda: fired.append(1.0))
        sim.schedule(5.0, lambda: fired.append(5.0))
        end = sim.run(until=2.0)
        assert fired == [1.0]
        assert end == 2.0
        assert sim.pending_events == 1

    def test_events_at_until_still_fire(self):
        sim = Simulator()
        fired: list[float] = []
        sim.schedule(2.0, lambda: fired.append(2.0))
        sim.run(until=2.0)
        assert fired == [2.0]

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired: list[str] = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0

    def test_max_events_guards_livelock(self):
        sim = Simulator()

        def respawn():
            sim.schedule(0.0, respawn)

        sim.schedule(0.0, respawn)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_cancel_via_simulator(self):
        sim = Simulator()
        fired: list[str] = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        sim.cancel(event)
        sim.run()
        assert fired == []
        assert sim.pending_events == 0

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def reenter():
            sim.run()

        sim.schedule(0.0, reenter)
        with pytest.raises(SimulationError, match="re-entrant"):
            sim.run()

    def test_rng_streams_are_deterministic(self):
        a = Simulator(seed=42).rng.stream("x").random()
        b = Simulator(seed=42).rng.stream("x").random()
        c = Simulator(seed=43).rng.stream("x").random()
        assert a == b
        assert a != c

    def test_rng_streams_are_independent_by_name(self):
        sim = Simulator(seed=1)
        first = sim.rng.stream("a").random()
        # Drawing from another stream must not perturb the first.
        sim2 = Simulator(seed=1)
        sim2.rng.stream("b").random()
        assert sim2.rng.stream("a").random() == first


class TestCancellation:
    """The queue-routed cancellation bookkeeping stays exact."""

    def test_double_cancel_is_noop(self):
        queue = EventQueue()
        kept: list[str] = []
        doomed = queue.push(1.0, lambda: kept.append("doomed"))
        queue.push(2.0, lambda: kept.append("kept"))
        doomed.cancel()
        doomed.cancel()  # second cancel must not decrement again
        assert len(queue) == 1
        while queue:
            queue.pop().fn()
        assert kept == ["kept"]

    def test_cancel_keeps_live_count_exact(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(6)]
        assert len(queue) == 6
        events[1].cancel()
        events[4].cancel()
        assert len(queue) == 4
        popped = 0
        while queue:
            queue.pop()
            popped += 1
        assert popped == 4
        assert len(queue) == 0

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired: list[str] = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        sim.schedule(2.0, lambda: fired.append("y"))
        sim.run()
        assert fired == ["x", "y"]
        event.cancel()  # already fired: must not corrupt the count
        assert sim.pending_events == 0

    def test_cancel_during_run_respects_pending_count(self):
        sim = Simulator()
        fired: list[str] = []
        later = sim.schedule(2.0, lambda: fired.append("later"))
        sim.schedule(1.0, lambda: later.cancel())
        sim.run()
        assert fired == []
        assert sim.pending_events == 0
