"""Unit tests for the closed-form pipeline model."""

from __future__ import annotations

import pytest

from repro.experiments.analytic import predict_power, run_analytic_validation
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads.pipeline import PipelineConfig


class TestPredictPower:
    def test_zero_delay_gives_ideal_power(self):
        config = PipelineConfig(n_nodes=4, data_size=64)
        zero = PAPER_PARAMS.zero_delay()
        predicted = predict_power(config, optimistic=False, params=zero)
        assert predicted == pytest.approx(config.ideal_power(), rel=1e-9)

    def test_optimistic_never_below_regular(self):
        for n in (2, 4, 8, 16):
            config = PipelineConfig(n_nodes=n, data_size=64)
            opt = predict_power(config, optimistic=True)
            reg = predict_power(config, optimistic=False)
            assert opt >= reg

    def test_power_declines_with_size(self):
        powers = [
            predict_power(PipelineConfig(n_nodes=n, data_size=64), optimistic=False)
            for n in (2, 8, 32, 128)
        ]
        assert powers == sorted(powers, reverse=True)

    def test_full_overlap_when_section_covers_round_trip(self):
        """With M far larger than any round trip, the optimistic model
        predicts the lock delay fully hidden (only the save cost left)."""
        config = PipelineConfig(n_nodes=4, data_size=64, local_time=1e-3)
        opt = predict_power(config, optimistic=True)
        # Compare against a hand-built period without any lock term.
        reg = predict_power(config, optimistic=False)
        assert opt > reg

    def test_bigger_tokens_cost_power(self):
        small = predict_power(
            PipelineConfig(n_nodes=8, data_size=64, item_bytes=64),
            optimistic=False,
        )
        big = predict_power(
            PipelineConfig(n_nodes=8, data_size=64, item_bytes=4096),
            optimistic=False,
        )
        assert big < small


class TestValidation:
    def test_model_matches_simulation_closely(self):
        rows = run_analytic_validation(sizes=(2, 8), data_size=64)
        for row in rows:
            assert row.gwc_error < 0.05
            assert row.optimistic_error < 0.05

    def test_hop_latency_scaling_matches(self):
        """The model tracks the simulator across a cost-model change."""
        slow = MachineParams(hop_latency=800e-9)
        rows = run_analytic_validation(sizes=(8,), data_size=64, params=slow)
        assert rows[0].gwc_error < 0.05
