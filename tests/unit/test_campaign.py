"""Unit tests for the campaign engine: generator, ddmin, schema, oracles."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError, FaultError, InvariantViolationError
from repro.faults.campaign import (
    CRASH_FREE_PROFILES,
    PROFILES,
    CampaignConfig,
    campaign_trials,
    ddmin,
    generate_plan,
    recovery_unit,
    smoke_config,
)
from repro.faults.plan import CRASH, DELAY, FaultPlan, crash
from repro.metrics.export import CHAOS_RUN_FIELDS, chaos_run_row

HORIZON = 400.0 * recovery_unit(6)


class TestGeneratePlan:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_deterministic_and_valid(self, profile, seed):
        first = generate_plan(seed, 6, HORIZON, profile)
        again = generate_plan(seed, 6, HORIZON, profile)
        assert first.events == again.events
        assert first.seed == seed
        first.validate(6)  # must not raise

    def test_distinct_seeds_diverge(self):
        plans = {generate_plan(s, 6, HORIZON, "mixed").events for s in range(8)}
        assert len(plans) > 1

    def test_times_stay_inside_horizon(self):
        for profile in PROFILES:
            for seed in range(6):
                for event in generate_plan(seed, 6, HORIZON, profile).events:
                    assert 0.0 <= event.time <= HORIZON
                    if event.until is not None:
                        assert event.time < event.until <= HORIZON

    def test_wire_profile_is_crash_free(self):
        for seed in range(10):
            plan = generate_plan(seed, 6, HORIZON, "wire")
            assert plan.events
            assert all(e.kind == DELAY for e in plan.events)

    def test_churn_pairs_crash_with_restart_and_spares_root(self):
        for seed in range(10):
            plan = generate_plan(seed, 6, HORIZON, "churn")
            crashes = [e for e in plan.events if e.kind == CRASH]
            assert crashes
            for event in crashes:
                assert event.node != 0  # the group root never plain-crashes
            restarts = [e for e in plan.events if e.kind == "restart"]
            assert sorted(e.node for e in crashes) == sorted(
                e.node for e in restarts
            )

    def test_splitbrain_islands_are_proper_minorities(self):
        for seed in range(10):
            plan = generate_plan(seed, 6, HORIZON, "splitbrain")
            islands = [e.nodes for e in plan.events if e.kind == "partition"]
            assert islands
            for island in islands:
                assert 0 not in island
                assert len(island) <= 2  # (n - 1) // 2 for n = 6

    def test_rootstorm_targets_the_sequencer(self):
        seen_root_kill = False
        for seed in range(10):
            plan = generate_plan(seed, 6, HORIZON, "rootstorm")
            kills = [e for e in plan.events if e.kind == CRASH]
            assert kills
            seen_root_kill |= any(e.root_of is not None for e in kills)
        assert seen_root_kill

    def test_rejects_bad_arguments(self):
        with pytest.raises(FaultError, match="profile"):
            generate_plan(0, 6, HORIZON, "bogus")
        with pytest.raises(FaultError, match="nodes"):
            generate_plan(0, 2, HORIZON)
        with pytest.raises(FaultError, match="horizon"):
            generate_plan(0, 6, 0.0)

    def test_exposed_as_faultplan_classmethod(self):
        direct = generate_plan(3, 6, HORIZON, "wire")
        via_class = FaultPlan.generate(3, 6, HORIZON, "wire")
        assert direct.events == via_class.events

    def test_payload_round_trips_through_json(self):
        plan = generate_plan(11, 6, HORIZON, "splitbrain")
        payload = json.loads(json.dumps(plan.to_payload()))
        rebuilt = FaultPlan.from_payload(payload)
        assert rebuilt.events == plan.events
        assert rebuilt.seed == plan.seed

    def test_malformed_payload_is_a_fault_error(self):
        with pytest.raises(FaultError):
            FaultPlan.from_payload({"seed": 0, "events": [{"bogus": 1}]})


class TestCampaignTrials:
    def test_enumeration_is_deterministic_and_rotates(self):
        config = CampaignConfig(trials=8)
        first = campaign_trials(config)
        again = campaign_trials(config)
        assert len(first) == 8 + config.shard_trials
        assert [t.seed for t in first] == [t.seed for t in again]
        assert {t.topology for t in first if t.kind == "chaos"} == {
            "mesh_torus",
            "ring",
        }
        assert [t.kind for t in first[-2:]] == ["shard", "shard"]

    def test_rejects_non_gwc_systems(self):
        with pytest.raises(FaultError, match="recovery stack"):
            campaign_trials(CampaignConfig(systems=("release",)))

    def test_task_queue_restricted_to_crash_free_profiles(self):
        trials = campaign_trials(
            CampaignConfig(trials=6, workload="task_queue", profile="all")
        )
        for trial in trials:
            assert trial.profile in CRASH_FREE_PROFILES
        with pytest.raises(FaultError, match="crash-free"):
            campaign_trials(
                CampaignConfig(workload="task_queue", profile="churn")
            )

    def test_smoke_config_spans_structural_profiles_and_shards(self):
        trials = campaign_trials(smoke_config())
        chaos = [t for t in trials if t.kind == "chaos"]
        # Six trials over the profile x system rotation cover the three
        # structural profiles on both systems; the shard trials add the
        # wire profile under both sync policies.
        assert {t.profile for t in chaos} == {
            "churn",
            "splitbrain",
            "rootstorm",
        }
        shard = [t for t in trials if t.kind == "shard"]
        assert {t.shard_policy for t in shard} == {
            "optimistic",
            "conservative",
        }


class TestDdmin:
    def _events(self, n):
        return tuple(crash(float(i + 1), node=1) for i in range(n))

    def test_reduces_to_the_failing_core(self):
        events = self._events(8)
        core = {events[2], events[5]}

        def fails(candidate):
            return core <= set(candidate)

        result = ddmin(events, fails)
        assert set(result) == core

    def test_result_is_one_minimal(self):
        events = self._events(10)
        core = {events[1], events[4], events[7]}

        def fails(candidate):
            return core <= set(candidate)

        result = ddmin(events, fails)
        assert set(result) == core
        for i in range(len(result)):
            assert not fails(result[:i] + result[i + 1:])

    def test_empty_plan_failure_returns_empty(self):
        assert ddmin(self._events(5), lambda _c: True) == ()

    def test_single_item_core(self):
        events = self._events(7)
        result = ddmin(events, lambda c: events[3] in c)
        assert result == (events[3],)


class TestChaosRunRow:
    def _values(self):
        values = dict.fromkeys(CHAOS_RUN_FIELDS, 0)
        values.update(system="gwc", workload="counter", scenario="s", stall="")
        return values

    def test_complete_values_keep_field_order(self):
        row = chaos_run_row(self._values())
        assert tuple(row) == CHAOS_RUN_FIELDS

    def test_prefix_prepends_and_preserves_schema(self):
        row = chaos_run_row(self._values(), prefix={"trial": 3})
        assert tuple(row) == ("trial",) + CHAOS_RUN_FIELDS
        assert row["trial"] == 3

    def test_missing_field_is_a_hard_error(self):
        values = self._values()
        del values["failovers"]
        with pytest.raises(ExperimentError, match="failovers"):
            chaos_run_row(values)

    def test_unknown_field_is_a_hard_error(self):
        values = self._values()
        values["bogus"] = 1
        with pytest.raises(ExperimentError, match="bogus"):
            chaos_run_row(values)

    def test_prefix_collision_is_a_hard_error(self):
        with pytest.raises(ExperimentError, match="seed"):
            chaos_run_row(self._values(), prefix={"seed": 9})


class TestGvtMonitor:
    def test_monotone_samples_pass(self):
        from repro.consistency.oracles import GvtMonitor

        monitor = GvtMonitor()
        for gvt in (0.0, 0.5, 0.5, 1.25):
            monitor.note(gvt)
        assert monitor.samples == 4

    def test_regression_raises_with_evidence(self):
        from repro.consistency.oracles import GvtMonitor

        monitor = GvtMonitor()
        monitor.note(2.0)
        with pytest.raises(InvariantViolationError, match="backwards") as info:
            monitor.note(1.0)
        assert info.value.oracle == "gvt_monotonic"
        assert any("gvt=2" in line for line in info.value.evidence)
