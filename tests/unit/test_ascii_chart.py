"""Unit tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.metrics.ascii_chart import render_chart


class TestRenderChart:
    def test_single_series_renders(self):
        text = render_chart({"s": [(1, 1.0), (2, 2.0), (3, 3.0)]})
        assert "o=s" in text
        assert text.count("o") >= 3 + 1  # 3 points + legend

    def test_axis_labels_show_extremes(self):
        text = render_chart({"s": [(1, 0.5), (10, 4.5)]})
        assert "4.5" in text
        assert "0.5" in text
        assert "10" in text

    def test_multiple_series_get_distinct_markers(self):
        text = render_chart(
            {"a": [(1, 1.0)], "b": [(1, 2.0)], "c": [(1, 3.0)]}
        )
        assert "o=a" in text
        assert "*=b" in text
        assert "+=c" in text

    def test_title_included(self):
        text = render_chart({"s": [(1, 1.0)]}, title="My Chart")
        assert text.startswith("My Chart")

    def test_log_x_spacing(self):
        """On a log-2 axis, 2->4 and 4->8 land equidistant columns."""
        text = render_chart(
            {"s": [(2, 1.0), (4, 1.0), (8, 1.0)]}, width=41, logx=True
        )
        row = next(line for line in text.splitlines() if "o" in line and "|" in line)
        cols = [i for i, ch in enumerate(row) if ch == "o"]
        assert len(cols) == 3
        assert cols[1] - cols[0] == cols[2] - cols[1]

    def test_flat_series_does_not_crash(self):
        text = render_chart({"s": [(1, 2.0), (2, 2.0)]})
        assert "o" in text

    def test_empty_series_rejected(self):
        with pytest.raises(ExperimentError):
            render_chart({})
        with pytest.raises(ExperimentError):
            render_chart({"s": []})

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ExperimentError):
            render_chart({"s": [(0, 1.0)]}, logx=True)

    def test_too_many_series_rejected(self):
        series = {f"s{i}": [(1, float(i))] for i in range(9)}
        with pytest.raises(ExperimentError):
            render_chart(series)
