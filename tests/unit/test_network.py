"""Unit tests for the network layer: delays, FIFO channels, stats."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.net.message import Message
from repro.net.network import Network
from repro.net.topology import MeshTorus, Ring
from repro.params import MachineParams
from repro.sim.kernel import Simulator


def make_net(n=4, topology=None, **params):
    sim = Simulator()
    top = topology if topology is not None else Ring(n)
    net = Network(sim, top, MachineParams(**params))
    return sim, net


class TestDelays:
    def test_delay_formula(self):
        sim, net = make_net(4, hop_latency=100e-9, link_bandwidth_bits=8e8)
        # 1 hop, 100 bytes at 1e8 B/s: 100ns + 1us
        assert net.delay(0, 1, 100) == pytest.approx(100e-9 + 1e-6)

    def test_self_send_costs_serialization_only(self):
        sim, net = make_net(4)
        assert net.delay(2, 2, 80) == pytest.approx(80 / net.params.link_bandwidth)

    def test_delivery_time_and_payload(self):
        sim, net = make_net(4)
        got = []
        net.attach(1, lambda msg: got.append((sim.now, msg.payload)))
        msg = Message(src=0, dst=1, kind="test", payload="hello", size_bytes=16)
        arrival = net.send(msg)
        sim.run()
        assert got == [(arrival, "hello")]

    def test_send_requires_attached_handler(self):
        sim, net = make_net(4)
        with pytest.raises(NetworkError, match="no handler"):
            net.send(Message(src=0, dst=1, kind="test"))

    def test_double_attach_rejected(self):
        sim, net = make_net(4)
        net.attach(0, lambda m: None)
        with pytest.raises(NetworkError, match="already"):
            net.attach(0, lambda m: None)

    def test_attach_out_of_range_rejected(self):
        sim, net = make_net(4)
        with pytest.raises(NetworkError):
            net.attach(9, lambda m: None)


class TestFifoChannels:
    def test_small_message_cannot_overtake_large(self):
        """A later, smaller message on the same channel arrives after an
        earlier, larger one — the property GWC sequencing rests on."""
        sim, net = make_net(4)
        got = []
        net.attach(1, lambda msg: got.append(msg.payload))
        net.send(Message(src=0, dst=1, kind="big", payload="big", size_bytes=100_000))
        net.send(Message(src=0, dst=1, kind="small", payload="small", size_bytes=8))
        sim.run()
        assert got == ["big", "small"]

    def test_different_channels_are_independent(self):
        sim, net = make_net(4)
        got = []
        net.attach(1, lambda msg: got.append(msg.payload))
        net.send(Message(src=0, dst=1, kind="big", payload="big", size_bytes=100_000))
        net.send(Message(src=2, dst=1, kind="small", payload="small", size_bytes=8))
        sim.run()
        assert got == ["small", "big"]

    def test_many_messages_preserve_order(self):
        sim, net = make_net(4)
        got = []
        net.attach(2, lambda msg: got.append(msg.payload))
        rng_sizes = [8, 5000, 16, 80_000, 24, 8, 100_000, 8]
        for i, size in enumerate(rng_sizes):
            net.send(Message(src=0, dst=2, kind="k", payload=i, size_bytes=size))
        sim.run()
        assert got == list(range(len(rng_sizes)))


class TestStats:
    def test_counters(self):
        sim, net = make_net(4)
        net.attach(1, lambda m: None)
        net.send(Message(src=0, dst=1, kind="a", size_bytes=10))
        net.send(Message(src=0, dst=1, kind="a", size_bytes=20))
        net.send(Message(src=0, dst=1, kind="b", size_bytes=5))
        assert net.stats.messages == 3
        assert net.stats.bytes == 35
        assert net.stats.by_kind["a"] == 2
        assert net.stats.by_kind["b"] == 1

    def test_sent_at_stamped(self):
        sim, net = make_net(4)
        net.attach(1, lambda m: None)
        msg = Message(src=0, dst=1, kind="x")
        sim.schedule(3.0, lambda: net.send(msg))
        sim.run()
        assert msg.sent_at == 3.0


class TestWithMeshTorus:
    def test_farther_nodes_take_longer(self):
        sim, net = make_net(topology=MeshTorus(16))
        near = net.delay(0, 1, 8)
        far = net.delay(0, 10, 8)  # two rows + two cols away
        assert far > near


class TestPerNodeStats:
    def test_inbound_outbound_counters(self):
        sim, net = make_net(4)
        net.attach(1, lambda m: None)
        net.attach(2, lambda m: None)
        net.send(Message(src=0, dst=1, kind="a"))
        net.send(Message(src=0, dst=2, kind="a"))
        net.send(Message(src=3, dst=1, kind="a"))
        assert net.stats.outbound[0] == 2
        assert net.stats.outbound[3] == 1
        assert net.stats.inbound[1] == 2
        assert net.stats.inbound[2] == 1

    def test_hottest_receiver(self):
        sim, net = make_net(4)
        net.attach(1, lambda m: None)
        net.attach(2, lambda m: None)
        for _ in range(3):
            net.send(Message(src=0, dst=1, kind="a"))
        net.send(Message(src=0, dst=2, kind="a"))
        assert net.stats.hottest_receiver() == (1, 3)

    def test_hottest_receiver_empty(self):
        sim, net = make_net(4)
        assert net.stats.hottest_receiver() == (-1, 0)


class _DropAll:
    """Loss-model stub: drop every message of one kind."""

    def __init__(self, kind):
        self.kind = kind

    def should_drop(self, msg):
        return msg.kind == self.kind


class TestDropStats:
    def test_dropped_counter_and_inbound_exclusion(self):
        sim = Simulator()
        net = Network(sim, Ring(4), MachineParams(), loss_model=_DropAll("lossy"))
        got = []
        net.attach(1, lambda msg: got.append(msg.kind))
        net.send(Message(src=0, dst=1, kind="lossy"))
        net.send(Message(src=0, dst=1, kind="kept"))
        sim.run()
        assert got == ["kept"]
        # Drops count as sent traffic but never as received load.
        assert net.stats.dropped == 1
        assert net.stats.messages == 2
        assert net.stats.outbound[0] == 2
        assert net.stats.inbound[1] == 1
