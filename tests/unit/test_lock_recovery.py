"""Lock crash-recovery: retry policy, tolerant manager, leases, timeouts."""

from __future__ import annotations

from random import Random

import pytest

from repro.consistency.base import make_system
from repro.core.machine import DSMMachine
from repro.errors import FaultError, LockStateError, LockTimeoutError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, partition
from repro.locks.gwc_lock import GwcLockManager, LockRetryPolicy
from repro.memory.varspace import (
    FREE_VALUE,
    LockDecl,
    grant_value,
    request_value,
)
from repro.sim.kernel import Simulator


class TestLockRetryPolicy:
    def test_validation(self):
        with pytest.raises(FaultError, match="timeout"):
            LockRetryPolicy(timeout=0.0)
        with pytest.raises(FaultError, match="budget"):
            LockRetryPolicy(timeout=1.0, max_retries=-1)
        with pytest.raises(FaultError, match="factor"):
            LockRetryPolicy(timeout=1.0, backoff_factor=0.5)
        with pytest.raises(FaultError, match="jitter"):
            LockRetryPolicy(timeout=1.0, jitter=-0.1)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = LockRetryPolicy(timeout=1.0, jitter=0.0)
        rng = Random(0)
        delays = [policy.backoff_delay(a, rng) for a in range(6)]
        # base = timeout/2, factor 2, cap = timeout*8.
        assert delays == [0.5, 1.0, 2.0, 4.0, 8.0, 8.0]

    def test_jitter_stretches_within_bounds_deterministically(self):
        policy = LockRetryPolicy(timeout=1.0, jitter=0.5)
        first = policy.backoff_delay(0, Random(7))
        again = policy.backoff_delay(0, Random(7))
        assert first == again  # seeded => reproducible
        assert 0.5 <= first <= 0.75  # base .. base * (1 + jitter)


def _manager(recovery: bool = False) -> GwcLockManager:
    return GwcLockManager(LockDecl("L", "g"), recovery=recovery)


class TestManagerRecoveryMode:
    def test_strict_mode_rejects_duplicate_request(self):
        manager = _manager()
        manager.on_write(1, request_value(1))
        with pytest.raises(LockStateError, match="requested twice"):
            manager.on_write(1, request_value(1))

    def test_strict_mode_rejects_foreign_release(self):
        manager = _manager()
        manager.on_write(1, request_value(1))
        with pytest.raises(LockStateError, match="released but holder"):
            manager.on_write(2, FREE_VALUE)

    def test_holder_retry_reemits_lost_grant(self):
        manager = _manager(recovery=True)
        assert manager.on_write(1, request_value(1)) == [grant_value(1)]
        # The grant was lost in flight; the client times out and retries.
        assert manager.on_write(1, request_value(1)) == [grant_value(1)]
        assert manager.regrants == 1
        assert manager.holder == 1

    def test_queued_retry_is_idempotent(self):
        manager = _manager(recovery=True)
        manager.on_write(1, request_value(1))
        manager.on_write(2, request_value(2))
        assert manager.on_write(2, request_value(2)) == []
        assert manager.queue == [2]

    def test_timed_out_requester_cancels_its_queue_slot(self):
        manager = _manager(recovery=True)
        manager.on_write(1, request_value(1))
        manager.on_write(2, request_value(2))
        assert manager.on_write(2, FREE_VALUE) == []
        assert manager.queue == []
        assert manager.cancelled_requests == 1
        # Holder 1's eventual release now frees the lock outright.
        assert manager.on_write(1, FREE_VALUE) == [FREE_VALUE]

    def test_stale_release_is_dropped(self):
        manager = _manager(recovery=True)
        manager.on_write(1, request_value(1))
        assert manager.on_write(3, FREE_VALUE) == []
        assert manager.stale_releases == 1
        assert manager.holder == 1

    def test_forged_request_still_rejected(self):
        manager = _manager(recovery=True)
        with pytest.raises(LockStateError, match="forged"):
            manager.on_write(1, request_value(2))


class TestLeases:
    def test_bad_duration_rejected(self):
        with pytest.raises(FaultError, match="duration"):
            _manager().enable_lease(Simulator(), lambda _v: None, duration=0.0)

    def test_crashed_holder_is_reclaimed_and_next_waiter_granted(self):
        sim = Simulator()
        manager = _manager()
        emitted: list[list] = []
        reclaims: list[tuple] = []
        crashed: set[int] = set()
        manager.on_reclaim = lambda *args: reclaims.append(args)
        manager.enable_lease(
            sim, emitted.append, duration=1.0, is_crashed=crashed.__contains__
        )
        manager.on_write(1, request_value(1))  # granted; lease armed
        manager.on_write(2, request_value(2))  # queued
        crashed.add(1)
        # Node 2 releases after the reclaim so the sim can drain.
        sim.schedule(1.5, lambda: emitted.append(manager.on_write(2, FREE_VALUE)))
        sim.run()
        assert manager.lease_reclaims == 1
        assert reclaims == [("L", 1, 2, 1.0)]
        assert emitted == [[grant_value(2)], [FREE_VALUE]]

    def test_reclaim_with_empty_queue_frees_the_lock(self):
        sim = Simulator()
        manager = _manager()
        emitted: list[list] = []
        manager.enable_lease(
            sim, emitted.append, duration=1.0, is_crashed=lambda _n: True
        )
        manager.on_write(1, request_value(1))
        sim.run()
        assert manager.holder is None
        assert emitted == [[FREE_VALUE]]

    def test_live_holder_gets_extension_not_reclaim(self):
        sim = Simulator()
        manager = _manager()
        manager.enable_lease(
            sim, lambda _v: None, duration=1.0, is_crashed=lambda _n: False
        )
        manager.on_write(1, request_value(1))
        # A long critical section: released only after two lease periods.
        sim.schedule(2.5, lambda: manager.on_write(1, FREE_VALUE))
        sim.run()
        assert manager.lease_extensions == 2
        assert manager.lease_reclaims == 0
        assert manager.holder is None

    def test_bad_max_extensions_rejected(self):
        with pytest.raises(FaultError, match="extensions"):
            _manager().enable_lease(
                Simulator(), lambda _v: None, duration=1.0, max_extensions=0
            )

    def test_silent_live_holder_is_reclaimed_after_extension_cap(self):
        # The lost-release wedge: a live holder whose release the network
        # ate must not be extended forever.
        sim = Simulator()
        manager = _manager()
        emitted: list[list] = []
        manager.enable_lease(
            sim,
            emitted.append,
            duration=1.0,
            is_crashed=lambda _n: False,
            max_extensions=3,
        )
        manager.on_write(1, request_value(1))
        manager.on_write(2, request_value(2))  # queued behind the wedge
        # The reclaim grants node 2 at t=4 (3 extensions + expiry); it
        # releases promptly, inside its own first lease period.
        sim.schedule(4.5, lambda: emitted.append(manager.on_write(2, FREE_VALUE)))
        sim.run()
        assert manager.lease_extensions == 3
        assert manager.lease_reclaims == 1
        assert emitted == [[grant_value(2)], [FREE_VALUE]]
        assert manager.holder is None

    def test_extension_budget_resets_per_grant(self):
        sim = Simulator()
        manager = _manager()
        manager.enable_lease(
            sim,
            lambda _v: None,
            duration=1.0,
            is_crashed=lambda _n: False,
            max_extensions=2,
        )
        manager.on_write(1, request_value(1))
        sim.schedule(1.5, lambda: manager.on_write(1, FREE_VALUE))
        # A fresh acquisition gets a fresh extension budget.
        sim.schedule(1.6, lambda: manager.on_write(2, request_value(2)))
        sim.schedule(3.2, lambda: manager.on_write(2, FREE_VALUE))
        sim.run()
        assert manager.lease_reclaims == 0
        assert manager.lease_extensions == 2  # one per long section
        assert manager.holder is None

    def test_stale_epoch_check_is_ignored(self):
        sim = Simulator()
        manager = _manager()
        manager.enable_lease(
            sim, lambda _v: None, duration=1.0, is_crashed=lambda _n: True
        )
        manager.on_write(1, request_value(1))
        manager.on_write(1, FREE_VALUE)  # occupancy over; epoch advanced
        manager._lease_check(epoch=1)  # the pre-release epoch
        assert manager.lease_reclaims == 0


class TestClientTimeout:
    def test_unreachable_root_raises_lock_timeout_error(self):
        """A partitioned requester times out, retries with backoff, and
        exhausts its budget with LockTimeoutError."""
        machine = DSMMachine(n_nodes=2, seed=1, reliable=True)
        machine.create_group("g")
        machine.declare_variable("g", "x", 0, mutex_lock="L")
        machine.declare_lock("g", "L", protects=("x",))
        injector = FaultInjector(
            machine, FaultPlan([partition(0.0, nodes=(1,))])
        )
        injector.install()
        policy = LockRetryPolicy(timeout=1e-4, max_retries=2, jitter=0.0)
        system = make_system("gwc", machine, lock_retry=policy)

        def requester():
            yield from system.acquire(machine.nodes[1], "L")

        machine.spawn(requester(), name="requester")
        with pytest.raises(LockTimeoutError, match="after 3 attempt"):
            machine.run()
        assert machine.metrics.total_counter("lock.timeouts") == 3
        assert machine.metrics.total_counter("lock.retries") == 2
