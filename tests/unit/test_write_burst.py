"""Unit tests for write-burst combining at the sharing interface.

Layer 2 of the batching work: with ``write_burst != 1`` consecutive
plain writes by one process accumulate into one multi-write
``gwc.update_burst`` packet, flushed at the burst size or at any
synchronization boundary.  The default (1) must leave every paper
behaviour untouched.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.machine import DSMMachine
from repro.consistency.base import make_system
from repro.params import PAPER_PARAMS
from repro.workloads.burst_writer import (
    BurstWriterConfig,
    run_burst_writer,
)


def make_machine(write_burst, n_nodes=4):
    params = dataclasses.replace(PAPER_PARAMS, write_burst=write_burst)
    machine = DSMMachine(n_nodes=n_nodes, topology="mesh_torus", params=params)
    machine.create_group("g", root=0)
    for i in range(4):
        machine.declare_variable("g", f"x{i}", initial=0)
    machine.declare_variable("g", "guarded", 0, mutex_lock="lk")
    machine.declare_lock("g", "lk", protects=("guarded",))
    return machine


class TestBuffering:
    def test_default_burst_sends_every_write(self):
        machine = make_machine(write_burst=1)
        iface = machine.nodes[1].iface
        for i in range(4):
            iface.share_write(f"x{i}", i)
        machine.run()
        assert machine.network.stats.by_kind["gwc.update"] == 4
        assert machine.network.stats.by_kind.get("gwc.update_burst", 0) == 0
        assert iface.burst_writes == 0

    def test_writes_buffer_until_burst_size(self):
        machine = make_machine(write_burst=3)
        iface = machine.nodes[1].iface
        iface.share_write("x0", 1)
        iface.share_write("x1", 2)
        assert iface.pending_burst_writes == 2
        assert machine.network.stats.messages == 0
        iface.share_write("x2", 3)  # hits the burst size -> flush
        assert iface.pending_burst_writes == 0
        assert machine.network.stats.by_kind["gwc.update_burst"] == 1
        machine.run()
        # The root sequenced all three writes individually.
        for node in machine.nodes:
            assert node.store.read("x0") == 1
            assert node.store.read("x1") == 2
            assert node.store.read("x2") == 3

    def test_unbounded_burst_flushes_only_at_boundary(self):
        machine = make_machine(write_burst=0)
        iface = machine.nodes[1].iface
        for i in range(4):
            iface.share_write(f"x{i}", i + 10)
        assert iface.pending_burst_writes == 4
        iface.flush_write_bursts()
        assert iface.pending_burst_writes == 0
        assert machine.network.stats.by_kind["gwc.update_burst"] == 1
        machine.run()
        for node in machine.nodes:
            for i in range(4):
                assert node.store.read(f"x{i}") == i + 10

    def test_single_buffered_write_degenerates_to_plain_update(self):
        machine = make_machine(write_burst=0)
        iface = machine.nodes[1].iface
        iface.share_write("x0", 5)
        iface.flush_write_bursts()
        assert machine.network.stats.by_kind["gwc.update"] == 1
        assert machine.network.stats.by_kind.get("gwc.update_burst", 0) == 0

    def test_atomic_exchange_is_a_boundary_and_rides_the_flush(self):
        machine = make_machine(write_burst=0)
        iface = machine.nodes[1].iface
        iface.share_write("x0", 1)
        iface.share_write("x1", 2)
        old = iface.atomic_exchange("x2", 99)
        assert old == 0
        assert iface.pending_burst_writes == 0
        # One combined packet carried data + the exchanged write.
        assert machine.network.stats.by_kind["gwc.update_burst"] == 1
        machine.run()
        for node in machine.nodes:
            assert node.store.read("x2") == 99

    def test_burst_wire_size_shares_one_header(self):
        machine = make_machine(write_burst=0)
        iface = machine.nodes[1].iface
        for i in range(4):
            iface.share_write(f"x{i}", i)
        before = machine.network.stats.bytes
        assert before == 0
        iface.flush_write_bursts()
        burst_bytes = machine.network.stats.bytes
        # Four writes unbatched would pay four headers; the burst pays
        # one header plus the four payloads, so it must be smaller.
        group = iface.groups["g"]
        packet_bytes = machine.network.params.packet_bytes
        unbatched = sum(
            group.wire_bytes(f"x{i}", packet_bytes) for i in range(4)
        )
        assert burst_bytes == unbatched - 3 * packet_bytes

    def test_suspend_insharing_flushes(self):
        machine = make_machine(write_burst=0)
        iface = machine.nodes[1].iface
        iface.share_write("x0", 7)
        iface.suspend_insharing()
        assert iface.pending_burst_writes == 0
        iface.resume_insharing()


class TestRootBurstHandling:
    def test_non_holder_burst_of_mutex_data_is_discarded(self):
        machine = make_machine(write_burst=0)
        iface = machine.nodes[2].iface
        iface.share_write("guarded", 123)  # speculative: node 2 holds no lock
        iface.share_write("x0", 1)
        iface.flush_write_bursts()
        machine.run()
        engine = machine.nodes[0].iface.root_engines["g"]
        assert engine.discarded == 1
        # The plain write still sequenced.
        assert machine.nodes[3].store.read("x0") == 1
        # The guarded write never reached other nodes.
        assert machine.nodes[3].store.read("guarded") == 0

    def test_burst_applies_reach_members_as_one_train(self):
        machine = make_machine(write_burst=0)
        iface = machine.nodes[1].iface
        for i in range(4):
            iface.share_write(f"x{i}", i + 1)
        iface.flush_write_bursts()
        machine.run()
        engine = machine.nodes[0].iface.root_engines["g"]
        assert engine.sequenced == 4
        assert engine.trains_sent == 1

    def test_end_to_end_equivalence_across_burst_sizes(self):
        images = []
        for burst in (1, 3, 0):
            result = run_burst_writer(
                BurstWriterConfig(
                    n_nodes=4,
                    rounds=3,
                    writes_per_round=5,
                    params=dataclasses.replace(PAPER_PARAMS, write_burst=burst),
                )
            )
            assert result.extra["acc_correct"], f"burst={burst}"
            assert result.extra["image_correct"], f"burst={burst}"
            assert result.extra["pending_burst_writes"] == 0
            images.append(result.extra["image"])
        assert images[0] == images[1] == images[2]

    def test_bursting_reduces_origin_messages(self):
        def origin_messages(burst):
            result = run_burst_writer(
                BurstWriterConfig(
                    n_nodes=4,
                    rounds=3,
                    writes_per_round=5,
                    params=dataclasses.replace(PAPER_PARAMS, write_burst=burst),
                )
            )
            return (
                result.extra["update_messages"] + result.extra["burst_messages"]
            )

        assert origin_messages(0) < origin_messages(3) < origin_messages(1)


class TestParamsValidation:
    def test_negative_write_burst_rejected(self):
        from repro.errors import ExperimentError
        from repro.params import MachineParams

        with pytest.raises(ExperimentError, match="write_burst"):
            MachineParams(write_burst=-1)
