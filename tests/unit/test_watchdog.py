"""Unit tests for the progress watchdog."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError, StallError
from repro.sim.kernel import Simulator
from repro.sim.watchdog import Watchdog
from repro.sim.waiters import Future, Signal


class TestValidation:
    def test_bad_interval_rejected(self):
        with pytest.raises(SimulationError, match="interval"):
            Watchdog(Simulator(), interval=0.0)

    def test_bad_patience_rejected(self):
        with pytest.raises(SimulationError, match="patience"):
            Watchdog(Simulator(), interval=1.0, patience=0)

    def test_bad_budget_rejected(self):
        with pytest.raises(SimulationError, match="max_sim_time"):
            Watchdog(Simulator(), interval=1.0, max_sim_time=-1.0)


class TestHealthyRuns:
    def test_disarms_itself_when_all_processes_finish(self):
        sim = Simulator()

        def proc():
            for _ in range(10):
                yield 1.0

        sim.spawn(proc(), name="p")
        dog = Watchdog(sim, interval=3.0)
        dog.arm()
        sim.run()
        assert not dog.armed
        assert dog.checks >= 1

    def test_no_false_positive_while_progressing(self):
        sim = Simulator()
        signal = Signal(name="tick")

        def pinger():
            for _ in range(50):
                yield 1.0
                signal.fire()

        def listener():
            for _ in range(50):
                yield signal

        sim.spawn(pinger(), name="pinger")
        sim.spawn(listener(), name="listener")
        # Checks fall between real events many times over.
        dog = Watchdog(sim, interval=0.5, patience=1)
        dog.arm()
        sim.run()  # must not raise

    def test_arm_twice_is_noop(self):
        sim = Simulator()

        def proc():
            yield 1.0

        sim.spawn(proc(), name="p")
        dog = Watchdog(sim, interval=0.25)
        dog.arm()
        dog.arm()
        sim.run()
        assert dog.checks >= 1


class TestStallDetection:
    def test_drained_queue_deadlock_is_reported(self):
        sim = Simulator()

        def proc():
            yield Future(name="never")

        sim.spawn(proc(), name="stuck-worker")
        Watchdog(sim, interval=1.0).arm()
        with pytest.raises(StallError) as excinfo:
            sim.run()
        message = str(excinfo.value)
        assert "no runnable events remain" in message
        assert "stuck-worker: waiting on future 'never'" in message

    def test_max_sim_time_budget_enforced(self):
        sim = Simulator()

        def proc():
            yield 100.0  # live event far in the future keeps the queue busy

        sim.spawn(proc(), name="sleeper")
        Watchdog(sim, interval=1.0, max_sim_time=5.0, patience=1000).arm()
        with pytest.raises(StallError, match="exceeded the max_sim_time budget"):
            sim.run()
        assert sim.now <= 6.0

    def test_livelock_detected_after_patience_checks(self):
        sim = Simulator()

        def beat():
            # A recurring protocol event: the queue never drains, but no
            # process advances — invisible without the watchdog.
            sim.schedule(1.0, beat)

        def proc():
            yield Future(name="never")

        sim.spawn(proc(), name="blocked")
        sim.schedule(1.0, beat)
        dog = Watchdog(sim, interval=1.0, patience=3)
        dog.arm()
        with pytest.raises(StallError, match="no process progressed for 3"):
            sim.run()

    def test_disarm_stops_checks(self):
        sim = Simulator()

        def proc():
            yield Future(name="never")

        p = sim.spawn(proc(), name="p")
        dog = Watchdog(sim, interval=1.0)
        dog.arm()
        dog.disarm()
        sim.run()  # the pending check is a no-op; the hang stays silent
        assert not p.finished

    def test_stall_report_caps_process_list(self):
        sim = Simulator()

        def proc():
            yield Future(name="never")

        for i in range(25):
            sim.spawn(proc(), name=f"w{i}")
        Watchdog(sim, interval=1.0).arm()
        with pytest.raises(StallError) as excinfo:
            sim.run()
        message = str(excinfo.value)
        assert "25 process(es) blocked" in message
        assert "... and 5 more" in message
