"""Unit tests for the GWC lock manager and the usage history."""

from __future__ import annotations

import pytest

from repro.errors import LockError, LockStateError
from repro.locks.gwc_lock import GwcLockManager
from repro.locks.history import UsageHistory
from repro.memory.varspace import FREE_VALUE, LockDecl, grant_value, request_value


def make_manager():
    return GwcLockManager(LockDecl(name="L", group="g", protects=()))


class TestGwcLockManager:
    def test_free_lock_granted_immediately(self):
        mgr = make_manager()
        out = mgr.on_write(origin=2, value=request_value(2))
        assert out == [grant_value(2)]
        assert mgr.holds(2)
        assert mgr.grants == 1

    def test_busy_lock_queues_request(self):
        mgr = make_manager()
        mgr.on_write(2, request_value(2))
        out = mgr.on_write(3, request_value(3))
        assert out == []
        assert mgr.queue == [3]
        assert mgr.max_queue == 1

    def test_release_grants_next_in_fifo_order(self):
        mgr = make_manager()
        mgr.on_write(2, request_value(2))
        mgr.on_write(3, request_value(3))
        mgr.on_write(1, request_value(1))
        out = mgr.on_write(2, FREE_VALUE)
        assert out == [grant_value(3)]
        assert mgr.holds(3)
        out = mgr.on_write(3, FREE_VALUE)
        assert out == [grant_value(1)]

    def test_release_with_empty_queue_propagates_free(self):
        mgr = make_manager()
        mgr.on_write(2, request_value(2))
        out = mgr.on_write(2, FREE_VALUE)
        assert out == [FREE_VALUE]
        assert mgr.holder is None
        assert mgr.releases == 1

    def test_release_by_non_holder_rejected(self):
        mgr = make_manager()
        mgr.on_write(2, request_value(2))
        with pytest.raises(LockStateError):
            mgr.on_write(3, FREE_VALUE)

    def test_double_request_rejected(self):
        mgr = make_manager()
        mgr.on_write(2, request_value(2))
        with pytest.raises(LockStateError):
            mgr.on_write(2, request_value(2))

    def test_forged_request_rejected(self):
        mgr = make_manager()
        with pytest.raises(LockStateError):
            mgr.on_write(origin=1, value=request_value(2))

    def test_grant_value_write_rejected(self):
        mgr = make_manager()
        with pytest.raises(LockStateError):
            mgr.on_write(1, grant_value(1))


class TestUsageHistory:
    def test_paper_formula(self):
        hist = UsageHistory(decay=0.95)
        hist.update(1.0)
        assert hist.value == pytest.approx(0.05)
        hist.update(1.0)
        assert hist.value == pytest.approx(0.95 * 0.05 + 0.05)

    def test_threshold_gate(self):
        hist = UsageHistory(decay=0.95, threshold=0.30)
        assert not hist.indicates_usage()
        # About eight consecutive busy observations push the EWMA past
        # the paper's 0.30 example threshold.
        for _ in range(8):
            hist.observe_busy()
        assert hist.indicates_usage()

    def test_decays_back_below_threshold(self):
        hist = UsageHistory(decay=0.95, threshold=0.30)
        for _ in range(20):
            hist.observe_busy()
        assert hist.indicates_usage()
        for _ in range(40):
            hist.observe_free()
        assert not hist.indicates_usage()

    def test_value_stays_in_unit_interval(self):
        hist = UsageHistory()
        for i in range(100):
            hist.update(i % 2)
            assert 0.0 <= hist.value <= 1.0

    def test_bad_sample_rejected(self):
        with pytest.raises(LockError):
            UsageHistory().update(1.5)

    def test_bad_decay_rejected(self):
        with pytest.raises(LockError):
            UsageHistory(decay=-0.1)

    def test_sample_count(self):
        hist = UsageHistory()
        hist.observe_busy()
        hist.observe_free()
        assert hist.samples == 2
