"""Unit tests for the DSMMachine builder and NodeHandle."""

from __future__ import annotations

import pytest

from repro.consistency.base import make_system, system_names
from repro.core.machine import DSMMachine
from repro.errors import MemoryError_, NetworkError
from repro.net.message import Message
from repro.sim.waiters import Signal


class TestMachineConstruction:
    def test_builds_nodes_and_attaches_handlers(self):
        machine = DSMMachine(n_nodes=4)
        assert machine.n_nodes == 4
        assert [n.id for n in machine.nodes] == [0, 1, 2, 3]

    def test_duplicate_group_rejected(self):
        machine = DSMMachine(n_nodes=2)
        machine.create_group("g")
        with pytest.raises(MemoryError_):
            machine.create_group("g")

    def test_group_defaults_to_all_nodes_root_zero(self):
        machine = DSMMachine(n_nodes=3)
        group = machine.create_group("g")
        assert group.members == (0, 1, 2)
        assert group.root == 0
        assert "g" in machine.nodes[0].iface.root_engines

    def test_lock_lookup_across_groups(self):
        machine = DSMMachine(n_nodes=4)
        machine.create_group("g1", members=(0, 1), root=0)
        machine.create_group("g2", members=(2, 3), root=2)
        machine.declare_variable("g2", "y", 0, mutex_lock="L2")
        machine.declare_lock("g2", "L2", protects=("y",))
        assert machine.lock_decl("L2").group == "g2"
        assert machine.group_of_lock("L2").root == 2
        with pytest.raises(MemoryError_):
            machine.lock_decl("missing")
        with pytest.raises(MemoryError_):
            machine.group_of_lock("missing")

    def test_unknown_message_kind_raises(self):
        machine = DSMMachine(n_nodes=2)
        machine.network.send(Message(src=0, dst=1, kind="alien.probe"))
        with pytest.raises(NetworkError, match="no handler"):
            machine.sim.run()

    def test_duplicate_kind_prefix_rejected(self):
        machine = DSMMachine(n_nodes=2)
        with pytest.raises(NetworkError):
            machine.register_kind_handler("gwc", lambda n, m: None)

    def test_run_records_elapsed_in_metrics(self):
        machine = DSMMachine(n_nodes=2)

        def proc():
            yield 5e-6

        machine.spawn(proc(), name="p")
        machine.run()
        assert machine.metrics.elapsed == pytest.approx(5e-6)


class TestSystemRegistry:
    def test_all_expected_systems_registered(self):
        names = system_names()
        for expected in ("gwc", "gwc_optimistic", "entry", "release", "weak",
                         "sequential"):
            assert expected in names

    def test_unknown_system_rejected(self):
        machine = DSMMachine(n_nodes=2)
        with pytest.raises(KeyError, match="unknown system"):
            make_system("imaginary", machine)

    def test_optimistic_kwargs_forwarded(self):
        machine = DSMMachine(n_nodes=2)
        system = make_system("gwc_optimistic", machine, threshold=0.7, decay=0.9)
        assert system.config.threshold == 0.7
        assert system.config.decay == 0.9


class TestNodeHandle:
    def test_busy_records_bucket(self):
        machine = DSMMachine(n_nodes=1)
        node = machine.nodes[0]

        def proc():
            yield from node.busy(2e-6, kind="useful")
            yield from node.busy(1e-6, kind="overhead")
            yield from node.busy(0.0, kind="useful")  # no-op

        machine.spawn(proc(), name="p")
        machine.run()
        assert node.metrics.useful == pytest.approx(2e-6)
        assert node.metrics.overhead == pytest.approx(1e-6)

    def test_compute_uses_cpu_speed(self):
        machine = DSMMachine(n_nodes=1)
        node = machine.nodes[0]

        def proc():
            yield from node.compute(33e6)  # one second of FLOPs

        machine.spawn(proc(), name="p")
        machine.run()
        assert machine.sim.now == pytest.approx(1.0)

    def test_interruptible_busy_completes_without_abort(self):
        machine = DSMMachine(n_nodes=1)
        node = machine.nodes[0]
        results = []

        def proc():
            result = yield from node.interruptible_busy(3e-6, Signal())
            results.append(result)

        machine.spawn(proc(), name="p")
        machine.run()
        assert results == [(3e-6, False)]

    def test_interruptible_busy_cut_short_by_signal(self):
        machine = DSMMachine(n_nodes=1)
        node = machine.nodes[0]
        abort = Signal()
        results = []

        def proc():
            result = yield from node.interruptible_busy(10e-6, abort)
            results.append(result)

        machine.spawn(proc(), name="p")
        machine.sim.schedule(4e-6, lambda: abort.fire("stop"))
        machine.run()
        elapsed, aborted = results[0]
        assert aborted
        assert elapsed == pytest.approx(4e-6)

    def test_interruptible_busy_without_signal(self):
        machine = DSMMachine(n_nodes=1)
        node = machine.nodes[0]
        results = []

        def proc():
            results.append((yield from node.interruptible_busy(1e-6, None)))

        machine.spawn(proc(), name="p")
        machine.run()
        assert results == [(1e-6, False)]


class TestInterfaceService:
    def test_inbound_messages_serialize_at_a_node(self):
        """With a positive interface service time, a node handles one
        inbound message at a time — the hot-spot model behind the
        grouping ablation."""
        from dataclasses import replace

        from repro.net.message import Message
        from repro.params import PAPER_PARAMS

        params = replace(PAPER_PARAMS, interface_service_time=1e-6)
        machine = DSMMachine(n_nodes=4, params=params)
        handled = []
        machine.register_kind_handler(
            "probe", lambda node_id, msg: handled.append(machine.sim.now)
        )
        # Three messages from different sources arrive almost together.
        for src in (1, 2, 3):
            machine.network.send(
                Message(src=src, dst=0, kind="probe.x", size_bytes=16)
            )
        machine.sim.run()
        gaps = [b - a for a, b in zip(handled, handled[1:])]
        assert all(gap >= 1e-6 * 0.999 for gap in gaps), gaps

    def test_zero_service_time_handles_immediately(self):
        from repro.net.message import Message

        machine = DSMMachine(n_nodes=2)
        handled = []
        machine.register_kind_handler(
            "probe", lambda node_id, msg: handled.append(machine.sim.now)
        )
        arrival = machine.network.send(
            Message(src=1, dst=0, kind="probe.x", size_bytes=16)
        )
        machine.sim.run()
        assert handled == [arrival]

    def test_negative_service_time_rejected(self):
        from repro.errors import ExperimentError
        from repro.params import MachineParams

        with pytest.raises(ExperimentError):
            MachineParams(interface_service_time=-1e-6)
