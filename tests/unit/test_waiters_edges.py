"""Edge-case tests for the Future/Signal waitable primitives."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.waiters import Future, Signal


class TestFutureEdges:
    def test_double_resolve_raises(self):
        future = Future(name="once")
        future.resolve("a")
        with pytest.raises(SimulationError, match="resolved twice"):
            future.resolve("b")
        # The first value survives the failed second resolve.
        assert future.value == "a"

    def test_double_resolve_with_same_value_still_raises(self):
        future = Future()
        future.resolve(None)
        with pytest.raises(SimulationError, match="twice"):
            future.resolve(None)

    def test_callback_added_after_resolution_fires_immediately(self):
        future = Future()
        future.resolve(42)
        seen: list[int] = []
        future.add_callback(seen.append)
        assert seen == [42]

    def test_callbacks_run_in_registration_order(self):
        future = Future()
        order: list[str] = []
        future.add_callback(lambda _v: order.append("first"))
        future.add_callback(lambda _v: order.append("second"))
        future.resolve(None)
        assert order == ["first", "second"]

    def test_callback_resolving_another_future_is_safe(self):
        first = Future()
        second = Future()
        first.add_callback(lambda v: second.resolve(v + 1))
        first.resolve(1)
        assert second.value == 2

    def test_wait_after_resolution_resumes_immediately(self):
        sim = Simulator()
        future = Future()
        got: list[tuple[float, object]] = []

        def late_waiter():
            yield 3.0
            value = yield future
            got.append((sim.now, value))

        sim.spawn(late_waiter(), name="late")
        sim.schedule(1.0, lambda: future.resolve("early"))
        sim.run()
        # Resolved at t=1; the waiter arriving at t=3 must not block.
        assert got == [(3.0, "early")]


class TestSignalEdges:
    def test_remove_callback_during_fire_returns_false(self):
        """fire() swaps the waiter list out first, so a callback that
        tries to deregister itself (or a sibling) mid-fire finds the
        registry already empty — and every waiter still runs."""
        signal = Signal(name="s")
        results: list[str] = []

        def second(_payload):
            results.append("second")

        def first(_payload):
            # Both callbacks are already detached for this fire.
            results.append(f"removed={signal.remove_callback(second)}")

        signal.add_callback(first)
        signal.add_callback(second)
        woken = signal.fire("x")
        assert woken == 2
        assert results == ["removed=False", "second"]
        assert signal.waiter_count == 0

    def test_callback_added_during_fire_waits_for_next_fire(self):
        signal = Signal()
        fires: list[str] = []

        def re_register(payload):
            fires.append(f"got {payload}")
            signal.add_callback(re_register)

        signal.add_callback(re_register)
        signal.fire("one")
        assert fires == ["got one"]
        # The re-registration belongs to the *next* fire, not this one.
        assert signal.waiter_count == 1
        signal.fire("two")
        assert fires == ["got one", "got two"]

    def test_fire_with_no_waiters_counts_but_wakes_none(self):
        signal = Signal()
        assert signal.fire("lost") == 0
        assert signal.fire_count == 1

    def test_remove_callback_only_removes_one_registration(self):
        signal = Signal()
        seen: list[object] = []
        cb = seen.append
        signal.add_callback(cb)
        signal.add_callback(cb)
        assert signal.remove_callback(cb) is True
        signal.fire("x")
        assert seen == ["x"]
