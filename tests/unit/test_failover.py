"""Unit tests for the root-failover subsystem.

Covers the pieces that can be exercised without a full chaos run: the
``crash(root_of=...)`` plan validation, the epoch bookkeeping on the
sharing interface, the failover manager's preconditions, the
first-person lock reconstruction rule, and the loss-model gate for
failover control traffic.
"""

from __future__ import annotations

import random

import pytest

from repro.core.machine import DSMMachine
from repro.errors import FaultError
from repro.faults.failover import (
    FailoverReply,
    RootFailoverManager,
    _Election,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, crash
from repro.memory.varspace import (
    FREE_VALUE,
    grant_value,
    request_value,
)
from repro.net.loss import FAILOVER_CONTROL_KINDS, LossModel
from repro.net.message import Message


class TestCrashRootPlan:
    def test_root_of_is_a_valid_crash_target(self):
        plan = FaultPlan([crash(1e-6, root_of="g")], seed=0)
        plan.validate(n_nodes=4)
        assert plan.events[0].root_of == "g"

    def test_crash_needs_exactly_one_target(self):
        with pytest.raises(FaultError):
            crash(1e-6)
        with pytest.raises(FaultError):
            crash(1e-6, node=1, root_of="g")
        with pytest.raises(FaultError):
            crash(1e-6, holder_of="L", root_of="g")


class TestInterfaceEpochs:
    def _machine(self):
        machine = DSMMachine(n_nodes=4, reliable=True)
        machine.create_group("g")
        machine.declare_variable("g", "v", 0)
        return machine

    def test_adopt_epoch_fast_forwards_cursor(self):
        machine = self._machine()
        iface = machine.nodes[1].iface
        assert iface._epoch["g"] == 0
        iface._adopt_epoch("g", 2, 7)
        assert iface._epoch["g"] == 2
        assert iface._next_seq["g"] == 7

    def test_adopt_epoch_never_rewinds_cursor(self):
        machine = self._machine()
        iface = machine.nodes[1].iface
        iface._next_seq["g"] = 10
        iface._adopt_epoch("g", 1, 4)
        assert iface._next_seq["g"] == 10

    def test_stale_epoch_counter_feeds_network_stats(self):
        machine = self._machine()
        iface = machine.nodes[1].iface
        before = machine.network.stats.stale_epoch_discards
        iface._note_stale_epoch()
        assert machine.network.stats.stale_epoch_discards == before + 1


class TestManagerPreconditions:
    def test_requires_reliability(self):
        machine = DSMMachine(n_nodes=4)  # no NACK/heartbeat machinery
        injector = FaultInjector(machine, FaultPlan([], seed=0))
        with pytest.raises(FaultError):
            RootFailoverManager(machine, injector)

    def test_double_install_rejected(self):
        machine = DSMMachine(n_nodes=4, reliable=True)
        injector = FaultInjector(machine, FaultPlan([], seed=0))
        RootFailoverManager(machine, injector).install()
        with pytest.raises(FaultError):
            RootFailoverManager(machine, injector).install()


def _reply(member, lock_value, lock_seq=-1, next_seq=0):
    return FailoverReply(
        group="g",
        member=member,
        epoch=1,
        next_seq=next_seq,
        image={},
        lock_state={"L": lock_value},
        lock_seq={"L": lock_seq},
    )


class TestLockReconstruction:
    def _manager(self):
        machine = DSMMachine(n_nodes=6, reliable=True)
        injector = FaultInjector(machine, FaultPlan([], seed=0))
        manager = RootFailoverManager(machine, injector)
        manager.install()
        return manager

    def _election(self, replies):
        election = _Election("g", old_root=0, successor=1, epoch=1)
        for reply in replies:
            election.replies[reply.member] = reply
        return election

    def test_first_person_claim_wins(self):
        manager = self._manager()
        election = self._election(
            [
                _reply(1, grant_value(1), lock_seq=5),
                _reply(2, request_value(2)),
                _reply(3, FREE_VALUE),
            ]
        )
        holder, pending = manager._reconstruct_lock(election, "L")
        assert holder == 1
        assert pending == [2]

    def test_third_party_grant_evidence_is_ignored(self):
        # Everyone's copy says "grant(4)" but node 4 (crashed) sent no
        # reply: re-granting to it would hand the lock to a dead node.
        manager = self._manager()
        election = self._election(
            [_reply(1, grant_value(4)), _reply(2, grant_value(4))]
        )
        holder, pending = manager._reconstruct_lock(election, "L")
        assert holder is None
        assert pending == []

    def test_claim_tie_broken_by_lock_seq_then_id(self):
        # Two self-claims can coexist when a grant raced the crash; the
        # one whose grant was sequenced later wins.
        manager = self._manager()
        election = self._election(
            [
                _reply(2, grant_value(2), lock_seq=3),
                _reply(5, grant_value(5), lock_seq=9),
            ]
        )
        holder, _ = manager._reconstruct_lock(election, "L")
        assert holder == 5

    def test_queue_head_promoted_when_no_claim(self):
        manager = self._manager()
        election = self._election(
            [_reply(3, request_value(3)), _reply(2, request_value(2))]
        )
        holder, pending = manager._reconstruct_lock(election, "L")
        assert holder is None
        assert pending == [2, 3]  # id order; _takeover promotes pending[0]


class TestLossModelFailoverGate:
    def _msg(self, kind, retransmit=False):
        class _Payload:
            pass

        payload = _Payload()
        payload.retransmit = retransmit
        return Message(src=0, dst=1, kind=kind, payload=payload, size_bytes=64)

    def test_failover_kinds_reliable_by_default(self):
        model = LossModel(0.999, random.Random(0))
        assert not model.should_drop(self._msg("failover.query"))
        assert not model.should_drop(self._msg("failover.reply"))

    def test_opt_in_makes_failover_control_lossy(self):
        model = LossModel(0.999, random.Random(0), lossy_failover=True)
        assert FAILOVER_CONTROL_KINDS <= model.lossy_kinds
        assert model.should_drop(self._msg("failover.query"))

    def test_retransmissions_stay_exempt(self):
        model = LossModel(0.999, random.Random(0), lossy_failover=True)
        assert not model.should_drop(self._msg("failover.query", retransmit=True))
        assert not model.should_drop(self._msg("failover.reply", retransmit=True))
