"""Setuptools shim.

All metadata lives in pyproject.toml.  This file exists so the package
can be installed in environments without the ``wheel`` package (where
pip's PEP-517 editable path fails): ``python setup.py develop`` or
``pip install -e . --no-build-isolation`` both work through it.
"""

from setuptools import setup

setup()
