#!/usr/bin/env python3
"""Figure 1: three CPUs contend for one lock under four models.

Reconstructs the paper's locking comparison — CPU1 and CPU3 request at
t=0, CPU2 (the lock owner / group root) requests later, each performs
one update of the guarded data — and prints completion and idle times
under Sesame GWC, optimistic GWC, entry consistency, and weak/release
consistency.

Run:  python examples/locking_comparison.py [update_us] [cpu2_delay_us]
"""

from __future__ import annotations

import sys

from repro.experiments import figure1
from repro.metrics.report import format_table
from repro.workloads.contention import ContentionConfig, run_contention


def main() -> None:
    update_us = float(sys.argv[1]) if len(sys.argv) > 1 else 4.0
    delay_us = float(sys.argv[2]) if len(sys.argv) > 2 else 10.0

    rows = figure1.run_figure1(
        update_time=update_us * 1e-6, cpu2_delay=delay_us * 1e-6
    )
    print(figure1.render(rows))
    print()
    for check in figure1.expectations(rows):
        print(check)

    # Idle-time breakdown per CPU plus the actual timing diagrams (the
    # form Figure 1 uses).
    print()
    idle_rows = []
    timelines = []
    for system in ("gwc", "gwc_optimistic", "entry", "release"):
        result = run_contention(
            ContentionConfig(
                system=system,
                update_time=update_us * 1e-6,
                cpu2_delay=delay_us * 1e-6,
                record_timeline=True,
            )
        )
        extra = result.extra
        idle_rows.append(
            [
                system,
                extra["cpu1_idle"] * 1e6,
                extra["cpu2_idle"] * 1e6,
                extra["cpu3_idle"] * 1e6,
            ]
        )
        timelines.append(extra["timeline"])
    print(
        format_table(
            ["system", "cpu1 idle (us)", "cpu2 idle (us)", "cpu3 idle (us)"],
            idle_rows,
            title="Wasted idle time per CPU",
        )
    )
    for timeline in timelines:
        print()
        print(timeline)


if __name__ == "__main__":
    main()
