#!/usr/bin/env python3
"""A complete DSM application: distributed Jacobi relaxation.

Shows the library as an application platform rather than a lock
benchmark: N processors each own a block of a vector and relax it
iteratively.  Halo exchange is pure eagersharing (single-writer
boundary variables with a version stamp — §2's "ordinary variable"
pattern), iterations separated by a sense-reversing barrier built on
root-arbitrated fetch-and-add.

The distributed result is compared element-for-element against a
sequential reference.

Run:  python examples/stencil_app.py [n_nodes] [cells_per_node] [iters]
"""

from __future__ import annotations

import sys

from repro.metrics.report import format_table
from repro.workloads.stencil import StencilConfig, run_stencil


def main() -> None:
    n_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    cells = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    iters = int(sys.argv[3]) if len(sys.argv) > 3 else 12

    config = StencilConfig(
        n_nodes=n_nodes, cells_per_node=cells, iterations=iters
    )
    result = run_stencil(config)

    print(
        format_table(
            ["property", "value"],
            [
                ["processors", n_nodes],
                ["cells total", n_nodes * cells],
                ["iterations", iters],
                ["simulated time (us)", result.elapsed * 1e6],
                ["speedup", result.speedup],
                ["barrier arrivals", result.counter("barrier.arrivals")],
                ["lock requests", result.counter("lock.requests")],
                ["max error vs sequential", result.extra["max_error"]],
            ],
            title="Distributed Jacobi relaxation on eagersharing DSM",
        )
    )
    assert result.extra["correct"]
    print()
    print("halo exchange used zero locks and zero demand fetches: the")
    print("owner writes its boundary, eagersharing delivers it, and GWC")
    print("ordering makes the version stamp imply the data is valid.")


if __name__ == "__main__":
    main()
