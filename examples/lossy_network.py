#!/usr/bin/env python3
"""The reliable tree multicast at work: correctness under message loss.

The Sesame interfaces implement "a reliable tree-based multicast
protocol ... to route, to sequence, and to retransmit all hidden sharing
messages".  This script injects increasing loss rates into the sequenced
multicast traffic of an optimistic-locking counter workload and shows
the recovery machinery (gap NACKs, root retransmissions, trailing
heartbeats) keeping every replica exact.

Run:  python examples/lossy_network.py
"""

from __future__ import annotations

from repro import DSMMachine, MutualExclusionChecker, Section, make_system
from repro.metrics.report import format_table

N_NODES = 8
ROUNDS = 6


def run(loss_rate: float, seed: int = 7):
    checker = MutualExclusionChecker()
    machine = DSMMachine(
        n_nodes=N_NODES, checker=checker, loss_rate=loss_rate, seed=seed
    )
    machine.create_group("g")
    machine.declare_variable("g", "v", 0, mutex_lock="L")
    machine.declare_lock("g", "L", protects=("v",))
    system = make_system("gwc_optimistic", machine)

    def body(ctx):
        value = ctx.read("v")
        yield from ctx.compute(1e-6)
        if ctx.aborted:
            return
        ctx.write("v", value + 1)
        ctx.observe_rmw("v", value, value + 1)

    section = Section(lock="L", body=body, shared_reads=("v",), shared_writes=("v",))

    def worker(node):
        for _ in range(ROUNDS):
            yield from node.busy(8e-6, kind="useful")
            yield from system.run_section(node, section)

    for node in machine.nodes:
        machine.spawn(worker(node), name=f"w{node.id}")
    machine.run(max_events=5_000_000)
    machine.sim.check_quiescent()
    checker.verify_chain("v", 0)

    expected = N_NODES * ROUNDS
    finals = {n.store.read("v") for n in machine.nodes}
    assert finals == {expected}, finals
    return {
        "loss": loss_rate,
        "elapsed_us": machine.metrics.elapsed * 1e6,
        "dropped": machine.loss_model.dropped if machine.loss_model else 0,
        "nacks": sum(n.iface.nacks_sent for n in machine.nodes),
        "retransmissions": machine.root_engine("g").retransmissions,
        "duplicates": sum(n.iface.duplicates_ignored for n in machine.nodes),
    }


def main() -> None:
    rows = [run(rate) for rate in (0.0, 0.02, 0.08, 0.20)]
    print(
        format_table(
            ["loss rate", "elapsed (us)", "dropped", "NACKs",
             "retransmissions", "dupes absorbed"],
            [
                [r["loss"], r["elapsed_us"], r["dropped"], r["nacks"],
                 r["retransmissions"], r["duplicates"]]
                for r in rows
            ],
            title=f"Reliable multicast under loss "
                  f"({N_NODES} CPUs x {ROUNDS} increments, all exact)",
        )
    )
    print()
    print("every replica converged on the exact count at every loss rate;")
    print("lost grants and data packets were recovered by NACK/retransmit.")


if __name__ == "__main__":
    main()
