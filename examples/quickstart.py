#!/usr/bin/env python3
"""Quickstart: optimistic mutual exclusion on a simulated DSM machine.

Builds an 8-processor mesh-torus machine, declares a lock-protected
shared counter, and has every processor increment it a few times under
the paper's optimistic mutual-exclusion protocol.  Prints what happened:
how many speculative executions succeeded (hiding their lock round
trips), how many conflicted and rolled back, and how many speculative
updates the group root discarded.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DSMMachine, MutualExclusionChecker, Section, make_system

N_NODES = 8
INCREMENTS_PER_NODE = 5


def increment_body(ctx):
    """The critical section: read, compute, write back (paper Fig. 3)."""
    value = ctx.read("counter")
    yield from ctx.compute(2e-6)  # ~66 FLOPs of "work" at 33 MFLOPS
    if ctx.aborted:  # an interrupt cut our speculation short
        return
    ctx.write("counter", value + 1)
    ctx.observe_rmw("counter", value, value + 1)


def worker(system, node, section):
    for _ in range(INCREMENTS_PER_NODE):
        yield from node.busy(10e-6, kind="useful")  # local work
        yield from system.run_section(node, section)


def main() -> None:
    checker = MutualExclusionChecker()
    machine = DSMMachine(n_nodes=N_NODES, checker=checker)

    # One sharing group over all nodes, rooted at node 0.  The root
    # sequences every shared write and manages the lock.
    machine.create_group("main")
    machine.declare_variable("main", "counter", 0, mutex_lock="L")
    machine.declare_lock("main", "L", protects=("counter",))

    system = make_system("gwc_optimistic", machine)
    section = Section(
        lock="L",
        body=increment_body,
        shared_reads=("counter",),
        shared_writes=("counter",),
    )
    for node in machine.nodes:
        machine.spawn(worker(system, node, section), name=f"worker-{node.id}")

    elapsed = machine.run()

    # Correctness: no update lost, every node's copy converged, and the
    # serializability chain is unbroken.
    expected = N_NODES * INCREMENTS_PER_NODE
    finals = [node.store.read("counter") for node in machine.nodes]
    assert finals == [expected] * N_NODES, finals
    checker.verify_chain("counter", 0)
    checker.verify_no_occupancy()

    total = machine.metrics.total_counter
    print(f"machine:              {N_NODES} CPUs, mesh torus, paper cost model")
    print(f"increments:           {expected} (all committed, all copies agree)")
    print(f"simulated time:       {elapsed * 1e6:.2f} us")
    print(f"lock requests:        {total('lock.requests')}")
    print(f"optimistic attempts:  {total('opt.attempts')}")
    print(f"  succeeded:          {total('opt.successes')} (lock round trip hidden)")
    print(f"  rolled back:        {total('opt.rollbacks')}")
    print(f"regular-path entries: {total('opt.regular_path')} (history said busy)")
    print(f"root discards:        {machine.root_engine('main').discarded} "
          f"(speculative writes stopped at the root)")
    print(f"wasted compute:       {machine.metrics.total_wasted() * 1e6:.2f} us")


if __name__ == "__main__":
    main()
