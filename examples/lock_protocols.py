#!/usr/bin/env python3
"""Five mutual-exclusion protocols on one kernel, side by side.

The paper's locks versus the classic baselines it cites: the queue-based
GWC lock (§2), optimistic mutual exclusion (§4), test-and-set spinning
[3], test-and-test-and-set [17], and the MCS software queue lock [14] —
all running the same contended shared-counter kernel on the same
eagersharing substrate.

Run:  python examples/lock_protocols.py [n_nodes] [increments]
"""

from __future__ import annotations

import sys

from repro.metrics.report import format_table
from repro.workloads.lock_bench import PROTOCOLS, LockBenchConfig, run_lock_bench


def main() -> None:
    n_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    increments = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    rows = []
    for protocol in PROTOCOLS:
        result = run_lock_bench(
            LockBenchConfig(
                protocol=protocol,
                n_nodes=n_nodes,
                increments_per_node=increments,
                think_time=5e-6,
            )
        )
        assert result.extra["correct"], f"{protocol} lost updates!"
        rows.append(
            [
                protocol,
                result.elapsed * 1e6,
                result.counter("lock.acquired"),
                result.extra.get("remote_attempts", "-"),
                result.counter("opt.rollbacks") or "-",
            ]
        )
    print(
        format_table(
            ["protocol", "elapsed (us)", "acquisitions", "remote attempts",
             "rollbacks"],
            rows,
            title=(
                f"Lock shoot-out: {n_nodes} CPUs x {increments} increments, "
                "contended counter"
            ),
        )
    )
    print()
    print("every protocol produced the exact count on every replica;")
    print("the paper's GWC queue lock wins on handoff latency, and the")
    print("optimistic variant additionally hides request round trips.")


if __name__ == "__main__":
    main()
