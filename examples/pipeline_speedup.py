#!/usr/bin/env python3
"""Figure 8: optimistic vs. regular vs. entry locking on a pipeline.

The paper's constructed example: a linear pipeline where each processor
waits for data from its predecessor, computes, updates shared data in a
mutex section (1/8 of a local computation), and passes new data on.
With no contention, optimistic synchronization overlaps the whole lock
round trip with the mutex section's own computation.

Prints the figure's four series (zero-delay maximum ~= 1.89, optimistic
GWC, non-optimistic GWC, entry consistency) across network sizes.

Run:  python examples/pipeline_speedup.py           (quick sizes)
      python examples/pipeline_speedup.py --full    (paper scale: data
                                                    size 1024, up to 128
                                                    CPUs)
"""

from __future__ import annotations

import sys

from repro.experiments import figure8


def main() -> None:
    full = "--full" in sys.argv
    if full:
        sizes = (2, 4, 8, 16, 32, 64, 128)
        data_size = 1024
    else:
        sizes = (2, 4, 8, 16)
        data_size = 128

    print(f"sweeping sizes {sizes} with data size {data_size} ...")
    rows = figure8.run_figure8(sizes=sizes, data_size=data_size)
    print()
    print(figure8.render(rows))
    print()
    for check in figure8.expectations(rows):
        print(check)

    first, last = rows[0], rows[-1]
    print()
    print(f"optimistic / non-optimistic at 2 CPUs: "
          f"{first.optimistic / first.gwc:5.2f}x (paper: ~1.1x)")
    print(f"optimistic / entry at 2 CPUs:          "
          f"{first.optimistic / first.entry:5.2f}x (paper: ~2.1x)")
    print(f"optimistic at {last.n_nodes} CPUs:                 "
          f"{last.optimistic:5.2f} (paper at 128: 1.15)")
    print(f"non-optimistic at {last.n_nodes} CPUs:             "
          f"{last.gwc:5.2f} (paper at 128: 1.03)")


if __name__ == "__main__":
    main()
