#!/usr/bin/env python3
"""Figure 7: the most complex rollback interaction, step by step.

A requester far from the group root speculates while a processor next to
the root requests, updates, and releases first.  This script runs the
scenario and narrates the protocol events from the trace: the conflict
interrupt, the rollback, the late speculative write accepted at the root
after the requester's own grant, and the hardware blocking filter
dropping its echo.

Run:  python examples/rollback_scenario.py
"""

from __future__ import annotations

from repro.workloads.scenarios import Figure7Config, run_figure7


def main() -> None:
    result = run_figure7(Figure7Config())
    extra = result.extra
    trace = extra["trace"]

    print("Figure 7 scenario on an 8-node ring, root = node 0:")
    print(f"  other processor (adjacent to root): node {extra['other']}")
    print(f"  optimistic requester (far side):    node {extra['requester']}")
    print()

    print("protocol timeline:")
    shown = 0
    for record in trace:
        if record.category in (
            "root.sequenced",
            "root.discarded",
            "iface.lock_interrupt",
            "iface.echo_dropped",
        ):
            print(f"  {record}")
            shown += 1
    if not shown:
        print("  (enable tracing to see events)")
    print()

    print("outcome:")
    print(f"  requester rolled back:     {extra['requester_rolled_back']}")
    print(f"  stale echoes dropped:      {extra['echoes_dropped']} "
          f"(Figure 6 hardware blocking)")
    print(f"  speculative root discards: {extra['root_discards']}")
    print(f"  all nodes converged:       {extra['converged']}")
    final = extra["final_values"][extra['requester']]
    print(f"  final value of a:          {final}")
    print()
    print("reading the final value: ('r', ('y', ('init', None))) means the")
    print("requester's committed update r was computed from the other")
    print("processor's y — exactly the paper's 'correct update (a=r)'.")


if __name__ == "__main__":
    main()
