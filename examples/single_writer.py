#!/usr/bin/env python3
"""Section 2's zero-lock pattern: an ordinary variable as a lock.

"Since writes are ordered, the case for one writer is simple; an
ordinary variable can lock a data structure awaited by reader(s)."

One node repeatedly publishes a multi-field record guarded only by a
version variable; reader nodes take consistent snapshots with *zero*
lock traffic — GWC's write ordering is the entire synchronization
mechanism.  The script prints the messages used, demonstrating that
only eagersharing updates flowed.

Run:  python examples/single_writer.py
"""

from __future__ import annotations

from repro import DSMMachine
from repro.locks.single_writer import SingleWriterPublisher, SingleWriterReader

ROUNDS = 5
N_NODES = 6


def main() -> None:
    machine = DSMMachine(n_nodes=N_NODES)
    machine.create_group("g", root=0)
    machine.declare_variable("g", "version", 0)
    machine.declare_variable("g", "price", 0.0)
    machine.declare_variable("g", "quantity", 0)

    publisher = SingleWriterPublisher("version", machine.nodes[1])
    reader = SingleWriterReader("version", ("price", "quantity"))
    snapshots: list[tuple[int, int, dict]] = []

    def writer_proc():
        for round_ in range(1, ROUNDS + 1):
            publisher.begin_update()
            publisher.write("price", round_ * 1.5)
            yield 2e-6  # a slow, multi-field update in progress
            publisher.write("quantity", round_ * 100)
            publisher.publish()
            yield 10e-6

    def reader_proc(node):
        for version in range(1, ROUNDS + 1):
            got_version, values = yield from reader.snapshot(
                node, min_version=version
            )
            snapshots.append((node.id, got_version, values))

    machine.spawn(writer_proc(), name="writer")
    for node in machine.nodes[2:4]:
        machine.spawn(reader_proc(node), name=f"reader-{node.id}")
    machine.run()

    print(f"published {ROUNDS} rounds from node 1; "
          f"{len(snapshots)} snapshots taken by nodes 2 and 3")
    torn = 0
    for node_id, version, values in snapshots:
        consistent = values["quantity"] == version * 100 and values[
            "price"
        ] == version * 1.5
        torn += not consistent
        print(f"  node {node_id} saw v{version}: {values} "
              f"{'(consistent)' if consistent else '(TORN!)'}")
    assert torn == 0, "a snapshot mixed fields from different rounds"

    kinds = dict(machine.network.stats.by_kind)
    print()
    print(f"message kinds on the wire: {kinds}")
    assert set(kinds) <= {"gwc.update", "gwc.apply"}, kinds
    print("no lock protocol messages at all: GWC write ordering did the work")


if __name__ == "__main__":
    main()
