#!/usr/bin/env python3
"""The paper's Figure 3 code, verbatim, under optimistic execution.

Figure 3 (Mutex Code — Read, Compute, and Write):

    lcl_c    = shared_a + lcl_b + lcl_c
    shared_a = shared_a + lcl_c
    ReleaseLock

Figure 4 is the compiler transformation of that fragment; this library's
`Section` + optimistic runner *is* that transformation.  The script runs
the exact fragment on several contending CPUs twice — once under the
regular GWC lock and once optimistically — and shows that the final
``shared_a`` is identical (the protocol changes timing, never results),
while the optimistic run overlapped lock round trips.

Run:  python examples/paper_figure3.py
"""

from __future__ import annotations

from repro import DSMMachine, MutualExclusionChecker, Section, make_system

N_NODES = 4
ROUNDS = 3


def figure3_body(ctx):
    """Exactly the paper's three lines (compute time ~ a few FLOPs)."""
    shared_a = ctx.read("shared_a")
    yield from ctx.compute(2e-6)
    if ctx.aborted:
        return
    lcl_c = shared_a + ctx.local("lcl_b") + ctx.local("lcl_c")
    ctx.set_local("lcl_c", lcl_c)
    ctx.write("shared_a", shared_a + lcl_c)
    ctx.observe_rmw("shared_a", shared_a, shared_a + lcl_c)
    # ReleaseLock happens in the runner (Figure 4 line 27).


FIGURE3_SECTION = Section(
    lock="L",
    body=figure3_body,
    shared_reads=("shared_a",),   # saved_shared_a_in
    shared_writes=("shared_a",),  # may be stopped by the lock manager
    local_vars=("lcl_c",),        # saved_lcl_c
    label="paper-figure3",
)


def run(system_name: str):
    checker = MutualExclusionChecker()
    machine = DSMMachine(n_nodes=N_NODES, checker=checker)
    machine.create_group("g")
    machine.declare_variable("g", "shared_a", 1, mutex_lock="L")
    machine.declare_lock("g", "L", protects=("shared_a",))
    system = make_system(system_name, machine)

    def cpu(node):
        node.locals["lcl_b"] = node.id + 1
        node.locals["lcl_c"] = 1
        for _ in range(ROUNDS):
            yield from node.busy(5e-6, kind="useful")
            yield from system.run_section(node, FIGURE3_SECTION)

    for node in machine.nodes:
        machine.spawn(cpu(node), name=f"cpu{node.id}")
    machine.run()
    checker.verify_no_occupancy()
    # Serializability proof: every section read exactly the value the
    # previous section wrote — rollbacks and re-executions included.
    checker.verify_chain("shared_a", 1)
    return machine


def main() -> None:
    regular = run("gwc")
    optimistic = run("gwc_optimistic")

    a_regular = regular.nodes[0].store.read("shared_a")
    a_optimistic = optimistic.nodes[0].store.read("shared_a")
    print("Figure 3 fragment, 4 CPUs x 3 rounds each:")
    print(f"  final shared_a, regular GWC lock:  {a_regular}")
    print(f"  final shared_a, optimistic:        {a_optimistic}")
    print("  both runs passed the serializability chain check: each")
    print("  section read exactly what its predecessor wrote, so the")
    print("  rollbacks below were invisible in the results.")
    print()
    total = optimistic.metrics.total_counter
    print(f"  optimistic attempts: {total('opt.attempts')}, "
          f"successes: {total('opt.successes')}, "
          f"rollbacks: {total('opt.rollbacks')}, "
          f"regular-path: {total('opt.regular_path')}")
    print(f"  elapsed: regular {regular.metrics.elapsed * 1e6:.2f} us, "
          f"optimistic {optimistic.metrics.elapsed * 1e6:.2f} us")


if __name__ == "__main__":
    main()
