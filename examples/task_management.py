#!/usr/bin/env python3
"""Figure 2: speedup for task management vs. network size.

One producer generates tasks into a lock-guarded shared queue; consumers
claim and execute them.  Prints the figure's three series — the
zero-delay maximum, Sesame GWC with eagersharing, and the fast entry
consistency comparator — over networks of 2^k + 1 processors.

Run:  python examples/task_management.py           (quick sizes)
      python examples/task_management.py --full    (paper scale: 1024
                                                   tasks, up to 129 CPUs;
                                                   takes a few minutes)
"""

from __future__ import annotations

import sys

from repro.experiments import figure2


def main() -> None:
    full = "--full" in sys.argv
    if full:
        sizes = (3, 5, 9, 17, 33, 65, 129)
        total_tasks = 1024
    else:
        sizes = (3, 5, 9, 17)
        total_tasks = 128

    print(f"sweeping sizes {sizes} with {total_tasks} tasks ...")
    rows = figure2.run_figure2(sizes=sizes, total_tasks=total_tasks)
    print()
    print(figure2.render(rows))
    print()
    for check in figure2.expectations(rows):
        print(check)

    gwc_peak = max(rows, key=lambda r: r.gwc)
    entry_peak = max(rows, key=lambda r: r.entry)
    print()
    print(
        f"GWC peak:   {gwc_peak.gwc:6.1f} at {gwc_peak.n_nodes} CPUs "
        f"(paper: 84.1 at 129)"
    )
    print(
        f"entry peak: {entry_peak.entry:6.1f} at {entry_peak.n_nodes} CPUs "
        f"(paper: 22.5 at 33)"
    )
    print(
        f"peak ratio: {gwc_peak.gwc / entry_peak.entry:6.2f}x "
        f"(paper: 3.7x)"
    )


if __name__ == "__main__":
    main()
